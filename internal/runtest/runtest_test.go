package runtest

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCleanOutputStripsTimestamps(t *testing.T) {
	in := "[    0.123456] Linux version 5.7.0\n[   12.000001] init: done\nplain line\n"
	want := "Linux version 5.7.0\ninit: done\nplain line\n"
	if got := CleanOutput(in); got != want {
		t.Errorf("CleanOutput = %q, want %q", got, want)
	}
}

func TestCleanOutputISOTimes(t *testing.T) {
	in := "run started 2021-03-04 12:13:14.5 on host"
	got := CleanOutput(in)
	if got != "run started <TIME> on host" {
		t.Errorf("got %q", got)
	}
}

func TestCleanOutputCRLF(t *testing.T) {
	if CleanOutput("a\r\nb") != "a\nb" {
		t.Error("CRLF not normalized")
	}
}

func TestMatchSubsetInOrder(t *testing.T) {
	got := "boot stuff\nresult: 42\nmore noise\nscore: 1.5\nshutdown\n"
	if !MatchSubset(got, "result: 42\nscore: 1.5\n") {
		t.Error("ordered subset should match")
	}
	if MatchSubset(got, "score: 1.5\nresult: 42\n") {
		t.Error("out-of-order reference must not match")
	}
	if MatchSubset(got, "result: 43\n") {
		t.Error("absent line must not match")
	}
}

func TestMatchSubsetIgnoresTimestamps(t *testing.T) {
	got := "[    1.000000] result: 42\n"
	ref := "[  999.999999] result: 42\n"
	if !MatchSubset(got, ref) {
		t.Error("timestamps should be cleaned before comparison")
	}
}

func TestMatchSubsetEmptyRef(t *testing.T) {
	if !MatchSubset("anything", "\n\n") {
		t.Error("empty reference matches everything")
	}
}

func TestMatchSubsetPartialLine(t *testing.T) {
	// Reference lines match as substrings of output lines.
	if !MatchSubset("the result: 42 (ok)\n", "result: 42") {
		t.Error("substring match should succeed")
	}
}

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(root, rel)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompareDirSuccess(t *testing.T) {
	out, ref := t.TempDir(), t.TempDir()
	writeTree(t, out, map[string]string{
		"uartlog":        "[  0.1] boot\nresult: 42\n[  0.2] down\n",
		"output/res.csv": "name,score\nbench,1.5\n",
		"extra.log":      "not referenced",
	})
	writeTree(t, ref, map[string]string{
		"uartlog":        "result: 42\n",
		"output/res.csv": "bench,1.5\n",
	})
	failures, err := CompareDir(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("failures: %v", failures)
	}
}

func TestCompareDirMissingFile(t *testing.T) {
	out, ref := t.TempDir(), t.TempDir()
	writeTree(t, ref, map[string]string{"uartlog": "x\n"})
	failures, err := CompareDir(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].RefFile != "uartlog" {
		t.Errorf("failures = %v", failures)
	}
}

func TestCompareDirContentMismatch(t *testing.T) {
	out, ref := t.TempDir(), t.TempDir()
	writeTree(t, out, map[string]string{"uartlog": "got something else\n"})
	writeTree(t, ref, map[string]string{"uartlog": "expected line\n"})
	failures, err := CompareDir(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 {
		t.Errorf("failures = %v", failures)
	}
	if failures[0].String() == "" {
		t.Error("failure should format")
	}
}

func TestCompareDirMissingRefDir(t *testing.T) {
	if _, err := CompareDir(t.TempDir(), "/nonexistent-ref"); err == nil {
		t.Error("expected error for missing reference dir")
	}
}
