// Package runtest implements the machinery behind `marshal test`
// (§III-D): cleaning run outputs of irrelevant or non-deterministic content
// (timestamps), and comparing them against reference outputs. "A complete
// comparison of outputs is not typically appropriate ... Instead,
// FireMarshal is able to clean outputs and allows the reference to contain
// only a subset of the expected output. A test that produces that subset
// somewhere in its output is considered a success."
package runtest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// timestampRE strips kernel printk-style "[   12.345678] " prefixes, which
// legitimately differ between functional and cycle-exact runs.
var timestampRE = regexp.MustCompile(`^\[\s*\d+\.\d+\]\s?`)

// isoTimeRE strips ISO-8601-ish timestamps embedded in lines.
var isoTimeRE = regexp.MustCompile(`\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}:\d{2}(\.\d+)?`)

// CleanOutput normalizes run output for comparison: CRLF, printk
// timestamps, and embedded wall-clock timestamps.
func CleanOutput(s string) string {
	lines := strings.Split(strings.ReplaceAll(s, "\r\n", "\n"), "\n")
	for i, line := range lines {
		line = timestampRE.ReplaceAllString(line, "")
		line = isoTimeRE.ReplaceAllString(line, "<TIME>")
		lines[i] = strings.TrimRight(line, " \t")
	}
	return strings.Join(lines, "\n")
}

// MatchSubset reports whether every line of ref appears, in order, within
// got (both cleaned). Empty reference lines are ignored.
func MatchSubset(got, ref string) bool {
	return matchSubset(got, ref, true)
}

// MatchSubsetRaw compares without output cleaning (testing.strip=false).
func MatchSubsetRaw(got, ref string) bool {
	return matchSubset(got, ref, false)
}

func matchSubset(got, ref string, clean bool) bool {
	if clean {
		got, ref = CleanOutput(got), CleanOutput(ref)
	}
	gotLines := strings.Split(got, "\n")
	pos := 0
	for _, refLine := range strings.Split(ref, "\n") {
		refLine = strings.TrimSpace(refLine)
		if refLine == "" {
			continue
		}
		found := false
		for ; pos < len(gotLines); pos++ {
			if strings.Contains(gotLines[pos], refLine) {
				found = true
				pos++
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Failure describes one mismatched reference file.
type Failure struct {
	RefFile string
	Detail  string
}

func (f Failure) String() string { return fmt.Sprintf("%s: %s", f.RefFile, f.Detail) }

// CompareDir checks a run-output directory against a reference directory
// with output cleaning enabled. Every file in refDir must exist in outDir
// and match as a cleaned subset. Files in outDir without a reference are
// ignored (references "contain only a subset of the expected output").
func CompareDir(outDir, refDir string) ([]Failure, error) {
	return CompareDirOpt(outDir, refDir, true)
}

// CompareDirOpt is CompareDir with cleaning controlled by the workload's
// testing.strip option.
func CompareDirOpt(outDir, refDir string, clean bool) ([]Failure, error) {
	return CompareDirFiltered(outDir, refDir, clean, nil)
}

// CompareDirFiltered additionally skips top-level reference subdirectories
// for which skipDir returns true — used for multi-job workloads whose
// refDir holds per-job subdirectories that do not apply to every job.
func CompareDirFiltered(outDir, refDir string, clean bool, skipDir func(name string) bool) ([]Failure, error) {
	var failures []Failure
	err := filepath.Walk(refDir, func(path string, info os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		if info.IsDir() {
			if skipDir != nil && filepath.Dir(path) == filepath.Clean(refDir) && skipDir(info.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(refDir, path)
		if err != nil {
			return err
		}
		refData, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		outPath := filepath.Join(outDir, rel)
		outData, err := os.ReadFile(outPath)
		if err != nil {
			failures = append(failures, Failure{RefFile: rel, Detail: "missing from run output"})
			return nil
		}
		if !matchSubset(string(outData), string(refData), clean) {
			failures = append(failures, Failure{
				RefFile: rel,
				Detail:  fmt.Sprintf("reference content not found in %s", outPath),
			})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("runtest: comparing against %s: %w", refDir, err)
	}
	return failures, nil
}
