package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firemarshal/internal/obs"
)

// TestScheduleIsPureFunction: the fault kind for (seed, site, index) never
// changes — the property every replay assertion in the chaos gate rests on.
func TestScheduleIsPureFunction(t *testing.T) {
	a := DefaultPlan(7)
	b := DefaultPlan(7)
	for _, site := range []string{"coord-cache", "coord-worker", "worker0-store"} {
		for i := uint64(0); i < 512; i++ {
			if ka, kb := a.Kind(site, i), b.Kind(site, i); ka != kb {
				t.Fatalf("Kind(%s, %d) = %s then %s; schedule is not pure", site, i, ka, kb)
			}
		}
	}
	// Distinct sites and seeds draw distinct schedules (overwhelmingly).
	diff := 0
	other := DefaultPlan(8)
	for i := uint64(0); i < 512; i++ {
		if a.Kind("coord-cache", i) != a.Kind("coord-worker", i) {
			diff++
		}
		if a.Kind("coord-cache", i) != other.Kind("coord-cache", i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("512 indexes across two sites and two seeds drew identical schedules")
	}
}

// TestScheduleRates: over many draws each enabled fault kind fires, none
// fires wildly off its per-mille rate, and the zero plan never fires.
func TestScheduleRates(t *testing.T) {
	p := DefaultPlan(11)
	counts := map[string]int{}
	const n = 20000
	for i := uint64(0); i < n; i++ {
		counts[p.Kind("rate-site", i)]++
	}
	for kind, pm := range map[string]uint32{
		FaultDrop: p.DropPM, Fault5xx: p.Err5xxPM, Fault429: p.Err429PM,
		FaultTruncate: p.TruncatePM, FaultDuplicate: p.DuplicatePM, FaultDelay: p.DelayPM,
	} {
		got := counts[kind]
		want := int(pm) * n / 1000
		if got == 0 {
			t.Errorf("fault %s never fired in %d draws (rate %d pm)", kind, n, pm)
		}
		if got < want/2 || got > want*2 {
			t.Errorf("fault %s fired %d times, want about %d", kind, got, want)
		}
	}
	quiet := Plan{Seed: 11}
	for i := uint64(0); i < 1000; i++ {
		if k := quiet.Kind("rate-site", i); k != FaultNone {
			t.Fatalf("zero-rate plan injected %s at #%d", k, i)
		}
	}
}

// TestFingerprint: stable per seed, distinct across seeds and rate edits.
func TestFingerprint(t *testing.T) {
	base, again := DefaultPlan(3), DefaultPlan(3)
	if a, b := base.Fingerprint(), again.Fingerprint(); a != b {
		t.Errorf("same plan, fingerprints %s != %s", a, b)
	}
	other := DefaultPlan(4)
	if base.Fingerprint() == other.Fingerprint() {
		t.Error("seeds 3 and 4 share a fingerprint")
	}
	edited := DefaultPlan(3)
	edited.DropPM++
	if edited.Fingerprint() == base.Fingerprint() {
		t.Error("editing a rate did not change the fingerprint")
	}
	flaky := DefaultPlan(3)
	flaky.FlakyHosts = map[string]uint32{"h:1": 900}
	if flaky.Fingerprint() == base.Fingerprint() {
		t.Error("adding a flaky host did not change the fingerprint")
	}
}

func TestDescribeReplays(t *testing.T) {
	var a, b bytes.Buffer
	p := DefaultPlan(21)
	p.Describe(&a, "site", 32)
	p.Describe(&b, "site", 32)
	if a.String() != b.String() {
		t.Errorf("Describe is not replayable:\n%s\nvs\n%s", a.String(), b.String())
	}
	if lines := strings.Count(a.String(), "\n"); lines != 32 {
		t.Errorf("Describe printed %d lines, want 32", lines)
	}
}

// transportForKind builds a plan whose every call at the site draws the
// one requested fault, a backing test server, and a client using the
// fault transport.
func transportForKind(t *testing.T, kind string, handler http.Handler) (*Transport, *httptest.Server, *obs.Registry) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	p := Plan{Seed: 1, DelayMax: 2 * time.Millisecond}
	switch kind {
	case FaultDrop:
		p.DropPM = 1000
	case Fault5xx:
		p.Err5xxPM = 1000
	case Fault429:
		p.Err429PM = 1000
	case FaultTruncate:
		p.TruncatePM = 1000
	case FaultDuplicate:
		p.DuplicatePM = 1000
	case FaultDelay:
		p.DelayPM = 999
	}
	reg := obs.NewRegistry()
	return p.Transport("test-site", nil, reg), srv, reg
}

func TestTransportDrop(t *testing.T) {
	tr, srv, reg := transportForKind(t, FaultDrop, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("dropped request reached the server")
	}))
	client := &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("injected drop returned no error")
	}
	if got := reg.Counter("chaos_http_drop_total").Value(); got != 1 {
		t.Errorf("chaos_http_drop_total = %d, want 1", got)
	}
	if got := reg.Counter("chaos_http_faults_total").Value(); got != 1 {
		t.Errorf("chaos_http_faults_total = %d, want 1", got)
	}
}

func TestTransport5xxAnd429(t *testing.T) {
	for kind, wantCode := range map[string]int{Fault5xx: 500, Fault429: 429} {
		tr, srv, _ := transportForKind(t, kind, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			t.Errorf("%s request reached the server", kind)
		}))
		resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if resp.StatusCode != wantCode {
			t.Errorf("%s: status %d, want %d", kind, resp.StatusCode, wantCode)
		}
		if kind == Fault429 {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("injected 429 carries no Retry-After header")
			}
		}
		resp.Body.Close()
	}
}

func TestTransportTruncate(t *testing.T) {
	const body = "0123456789abcdef"
	tr, srv, _ := transportForKind(t, FaultTruncate, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := body[:len(body)/2]; string(got) != want {
		t.Errorf("truncated body = %q, want %q", got, want)
	}
}

func TestTransportDuplicate(t *testing.T) {
	hits := 0
	tr, srv, _ := transportForKind(t, FaultDuplicate, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		data, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "hit %d body %s", hits, data)
	}))
	resp, err := (&http.Client{Transport: tr}).Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if hits != 2 {
		t.Errorf("duplicated request landed %d times, want 2", hits)
	}
	// The caller sees the second answer, with the body intact both times.
	if want := "hit 2 body payload"; string(got) != want {
		t.Errorf("response = %q, want %q", got, want)
	}
}

func TestTransportDelay(t *testing.T) {
	tr, srv, _ := transportForKind(t, FaultDelay, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	var slept time.Duration
	tr.sleep = func(d time.Duration) { slept += d }
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept <= 0 || slept > 2*time.Millisecond {
		t.Errorf("injected delay %v, want in (0, 2ms]", slept)
	}
}

// TestTransportFlakyHost: the extra per-host drop rate singles out one
// peer while others pass untouched.
func TestTransportFlakyHost(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	p := Plan{Seed: 5, FlakyHosts: map[string]uint32{host: 1000}}
	client := &http.Client{Transport: p.Transport("flaky-site", nil, obs.NewRegistry())}
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "flaky host") {
		t.Fatalf("flaky host got through: err = %v", err)
	}

	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer other.Close()
	client2 := &http.Client{Transport: p.Transport("flaky-site", nil, obs.NewRegistry())}
	resp, err := client2.Get(other.URL)
	if err != nil {
		t.Fatalf("non-flaky host was dropped: %v", err)
	}
	resp.Body.Close()
}

func TestStoreFaultsReadFlip(t *testing.T) {
	p := Plan{Seed: 9, FlipReadPM: 1000}
	reg := obs.NewRegistry()
	f := p.StoreFaults("store", reg)
	orig := []byte("blob contents under test")
	got := f.ReadBlob("d0", append([]byte(nil), orig...))
	if bytes.Equal(got, orig) {
		t.Fatal("ReadBlob at 1000pm returned unflipped data")
	}
	diff := 0
	for i := range orig {
		diff += bitsSet(got[i] ^ orig[i])
	}
	if diff != 1 {
		t.Errorf("ReadBlob flipped %d bits, want exactly 1", diff)
	}
	if got := reg.Counter("chaos_store_flips_total").Value(); got != 1 {
		t.Errorf("chaos_store_flips_total = %d, want 1", got)
	}
	// Replays of the same read index flip the same bit.
	f2 := p.StoreFaults("store", reg)
	if again := f2.ReadBlob("d0", append([]byte(nil), orig...)); !bytes.Equal(again, got) {
		t.Error("same (seed, site, index) flipped a different bit on replay")
	}
	// The zero plan passes data through untouched.
	quiet := Plan{Seed: 9}
	if got := quiet.StoreFaults("store", reg).ReadBlob("d0", orig); !bytes.Equal(got, orig) {
		t.Error("zero-rate plan tampered with a read")
	}
}

func bitsSet(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestStoreFaultsWrite(t *testing.T) {
	data := []byte("0123456789")
	reg := obs.NewRegistry()

	torn := Plan{Seed: 2, TornWritePM: 1000}
	got, err := torn.StoreFaults("store", reg).WriteBlob("d1", data)
	if err != nil {
		t.Fatalf("torn write errored: %v", err)
	}
	if len(got) != len(data)/2 {
		t.Errorf("torn write persisted %d bytes, want %d", len(got), len(data)/2)
	}
	if reg.Counter("chaos_store_torn_writes_total").Value() != 1 {
		t.Error("chaos_store_torn_writes_total not incremented")
	}

	full := Plan{Seed: 2, NoSpacePM: 1000}
	if _, err := full.StoreFaults("store", reg).WriteBlob("d1", data); err == nil || !strings.Contains(err.Error(), "no space") {
		t.Errorf("ENOSPC fault err = %v, want no-space error", err)
	}
	if reg.Counter("chaos_store_nospace_total").Value() != 1 {
		t.Error("chaos_store_nospace_total not incremented")
	}

	quiet := Plan{Seed: 2}
	if got, err := quiet.StoreFaults("store", reg).WriteBlob("d1", data); err != nil || !bytes.Equal(got, data) {
		t.Errorf("zero-rate plan altered a write: %q, %v", got, err)
	}
}

func TestPlantCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	const digest = "abcdef0123456789"
	if err := PlantCorruptBlob(dir, digest); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "blobs", digest[:2], digest))
	if err != nil {
		t.Fatalf("planted blob not at the cas layout path: %v", err)
	}
	if !strings.Contains(string(data), "corrupted") {
		t.Errorf("planted blob contents %q", data)
	}
	if err := PlantCorruptBlob(dir, "xy"); err == nil {
		t.Error("short digest accepted")
	}
}
