// Package chaos is a deterministic, seed-driven fault injector for the
// fleet's I/O edges: an http.RoundTripper wrapper that injects dropped
// connections, latency, 5xx/429 responses, truncated and duplicated
// bodies, and a cas.Store tamper hook that injects bit-flipped reads,
// torn writes, and ENOSPC. Every fault decision is a pure function of
// (plan seed, site name, per-site call index) — no wall clock, no global
// RNG — so a chaos run's fault schedule is bit-replayable: the same seed
// against the same call sequence injects exactly the same faults, which
// is what lets `marshal chaos` demand bit-identical results from a run
// that survived them.
package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"firemarshal/internal/obs"
)

// Plan is one named fault schedule: the seed plus per-mille rates for
// each fault kind. HTTP rates select at most one fault per request
// (cumulative thresholds over a single roll), so their sum must stay
// under 1000; store rates likewise per operation.
type Plan struct {
	// Seed drives every decision. Same seed, same schedule.
	Seed int64

	// HTTP faults, per mille of requests at a site.
	DropPM      uint32 // connection error before the request is sent
	Err5xxPM    uint32 // synthesized 500, request never sent
	Err429PM    uint32 // synthesized 429 with Retry-After, request never sent
	TruncatePM  uint32 // real response with the body cut in half
	DuplicatePM uint32 // request sent twice (retry-after-lost-response shape)
	DelayPM     uint32 // injected latency before a real request
	// DelayMax bounds injected latency (the actual delay is schedule-drawn
	// in [1ms, DelayMax]).
	DelayMax time.Duration

	// FlakyHosts maps a host:port to an EXTRA per-mille drop rate applied
	// before the normal roll — how a chaos run singles out one peer as
	// error-prone (the worker the coordinator must quarantine).
	FlakyHosts map[string]uint32

	// Store faults, per mille of blob operations.
	FlipReadPM  uint32 // one bit flipped in the returned bytes
	TornWritePM uint32 // only half the bytes reach disk
	NoSpacePM   uint32 // the write fails with an ENOSPC-shaped error
}

// DefaultPlan is the named schedule `marshal chaos` runs under: every
// fault kind enabled at rates the hardened stack must absorb without
// losing a job or changing a single output bit.
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed:        seed,
		DropPM:      40,
		Err5xxPM:    40,
		Err429PM:    30,
		TruncatePM:  20,
		DuplicatePM: 20,
		DelayPM:     60,
		DelayMax:    8 * time.Millisecond,
		FlipReadPM:  30,
		TornWritePM: 20,
		NoSpacePM:   10,
	}
}

// Fault kinds, in threshold order.
const (
	FaultNone      = "none"
	FaultDrop      = "drop"
	Fault5xx       = "5xx"
	Fault429       = "429"
	FaultTruncate  = "truncate"
	FaultDuplicate = "duplicate"
	FaultDelay     = "delay"
)

// rand64 is the schedule's source of determinism: a 64-bit hash of
// (seed, site, lane, index). Lanes keep independent decisions about the
// same call (fault kind, delay length, flip position) uncorrelated.
func (p *Plan) rand64(site, lane string, index uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	io.WriteString(h, site)
	h.Write([]byte{0})
	io.WriteString(h, lane)
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], index)
	h.Write(buf[:])
	return h.Sum64()
}

func (p *Plan) roll(site, lane string, index uint64) uint32 {
	return uint32(p.rand64(site, lane, index) % 1000)
}

// Kind returns the fault the schedule assigns to the index-th HTTP call
// at site — the replayable schedule itself, independent of any transport
// instance. (The extra FlakyHosts drop is decided per request host on a
// separate lane and is equally deterministic.)
func (p *Plan) Kind(site string, index uint64) string {
	r := p.roll(site, "kind", index)
	for _, step := range []struct {
		pm   uint32
		kind string
	}{
		{p.DropPM, FaultDrop},
		{p.Err5xxPM, Fault5xx},
		{p.Err429PM, Fault429},
		{p.TruncatePM, FaultTruncate},
		{p.DuplicatePM, FaultDuplicate},
		{p.DelayPM, FaultDelay},
	} {
		if r < step.pm {
			return step.kind
		}
		r -= step.pm
	}
	return FaultNone
}

// Fingerprint digests the plan's rates plus the first decisions of a
// fixed probe-site set into a short hex string. Two runs with the same
// seed and rates print the same fingerprint; any drift in the schedule
// function or the rates changes it — the replay assertion `marshal
// chaos -schedule-only` is built on.
func (p *Plan) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%s|",
		p.Seed, p.DropPM, p.Err5xxPM, p.Err429PM, p.TruncatePM,
		p.DuplicatePM, p.DelayPM, p.FlipReadPM, p.TornWritePM, p.NoSpacePM,
		p.DelayMax)
	var hosts []string
	for host, pm := range p.FlakyHosts {
		hosts = append(hosts, fmt.Sprintf("%s=%d", host, pm))
	}
	sort.Strings(hosts)
	io.WriteString(h, strings.Join(hosts, ","))
	for _, site := range []string{"probe-a", "probe-b", "probe-c", "probe-d"} {
		for i := uint64(0); i < 64; i++ {
			io.WriteString(h, p.Kind(site, i))
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], p.rand64(site, "delay", i))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Describe prints the schedule's first n decisions at site, one per
// line — the human-readable half of the replay assertion.
func (p *Plan) Describe(w io.Writer, site string, n int) {
	for i := uint64(0); i < uint64(n); i++ {
		fmt.Fprintf(w, "%s #%d %s\n", site, i, p.Kind(site, i))
	}
}

// delay draws the injected latency for one call: [1ms, DelayMax].
func (p *Plan) delay(site string, index uint64) time.Duration {
	max := p.DelayMax
	if max <= time.Millisecond {
		return time.Millisecond
	}
	return time.Millisecond + time.Duration(p.rand64(site, "delay", index)%uint64(max-time.Millisecond))
}

// Transport wraps an http.RoundTripper with the plan's HTTP faults. Each
// transport instance owns one site name and a call counter; the fault for
// call i is Plan.Kind(site, i).
type Transport struct {
	plan  Plan
	site  string
	next  http.RoundTripper
	reg   *obs.Registry
	sleep func(time.Duration)
	idx   atomic.Uint64
}

// Transport builds a fault-injecting RoundTripper for one site. A nil
// next uses http.DefaultTransport; reg receives chaos_* fault counters
// (nil resolves to obs.Default).
func (p Plan) Transport(site string, next http.RoundTripper, reg *obs.Registry) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{plan: p, site: site, next: next, reg: reg, sleep: time.Sleep}
}

// Calls reports how many requests this transport has seen (schedule
// position, for logs and tests).
func (t *Transport) Calls() uint64 { return t.idx.Load() }

// synthesize builds a response that never touched the network.
func synthesize(req *http.Request, code int, header http.Header, body string) *http.Response {
	if header == nil {
		header = http.Header{}
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

func (t *Transport) count(kind string) {
	t.reg.Counter("chaos_http_faults_total").Inc()
	t.reg.Counter("chaos_http_" + kind + "_total").Inc()
}

// RoundTrip injects at most one schedule-drawn fault per request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.idx.Add(1) - 1
	if pm, ok := t.plan.FlakyHosts[req.URL.Host]; ok && t.plan.roll(t.site, "flaky", i) < pm {
		t.count("flaky_drop")
		return nil, fmt.Errorf("chaos: injected drop to flaky host %s (%s #%d)", req.URL.Host, t.site, i)
	}
	switch t.plan.Kind(t.site, i) {
	case FaultDrop:
		t.count(FaultDrop)
		return nil, fmt.Errorf("chaos: injected connection drop (%s #%d)", t.site, i)
	case Fault5xx:
		t.count(Fault5xx)
		return synthesize(req, http.StatusInternalServerError, nil, "chaos: injected server error"), nil
	case Fault429:
		t.count(Fault429)
		h := http.Header{}
		h.Set("Retry-After", "0")
		return synthesize(req, http.StatusTooManyRequests, h, "chaos: injected rate limit"), nil
	case FaultTruncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.count(FaultTruncate)
		return truncateBody(resp)
	case FaultDuplicate:
		// The lost-response shape: the request lands twice and the caller
		// only sees the second answer. Idempotent protocols shrug; the
		// coordinator's reconcile pass covers the rest.
		t.count(FaultDuplicate)
		dup, err := cloneRequest(req)
		if err == nil {
			if first, ferr := t.next.RoundTrip(dup); ferr == nil {
				io.Copy(io.Discard, first.Body)
				first.Body.Close()
			}
		}
		return t.next.RoundTrip(req)
	case FaultDelay:
		t.count(FaultDelay)
		t.sleep(t.plan.delay(t.site, i))
	}
	return t.next.RoundTrip(req)
}

// cloneRequest copies a request (and its buffered body) for duplication.
// Requests whose body cannot be replayed report an error and are sent
// once.
func cloneRequest(req *http.Request) (*http.Request, error) {
	dup := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return dup, nil
	}
	if req.GetBody == nil {
		return nil, errors.New("chaos: request body is not replayable")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	dup.Body = body
	restore, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	req.Body = restore
	return dup, nil
}

// truncateBody reads the inner response and returns it with the body cut
// in half — a mid-transfer disconnect as the client sees it. Digest
// checks (blobs) and JSON decoding (everything else) catch it downstream.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := data[:len(data)/2]
	resp.Body = io.NopCloser(strings.NewReader(string(cut)))
	resp.ContentLength = int64(len(cut))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// StoreFaults implements the cas.Tamper hook: schedule-drawn bit flips on
// blob reads, torn writes and ENOSPC on blob writes. Read and write
// decisions run on independent per-site counters.
type StoreFaults struct {
	plan Plan
	site string
	reg  *obs.Registry
	rIdx atomic.Uint64
	wIdx atomic.Uint64
}

// StoreFaults builds the tamper hook for one store site.
func (p Plan) StoreFaults(site string, reg *obs.Registry) *StoreFaults {
	return &StoreFaults{plan: p, site: site, reg: reg}
}

// ReadBlob flips one schedule-drawn bit in the returned copy when the
// schedule says so — the disk is untouched; the *read* is corrupt, which
// is exactly what bit rot, a bad cable, or a lying page cache look like.
func (f *StoreFaults) ReadBlob(digest string, data []byte) []byte {
	i := f.rIdx.Add(1) - 1
	if len(data) == 0 || f.plan.roll(f.site, "flip", i) >= f.plan.FlipReadPM {
		return data
	}
	f.reg.Counter("chaos_store_flips_total").Inc()
	out := append([]byte(nil), data...)
	pos := f.plan.rand64(f.site, "flippos", i) % uint64(len(out))
	out[pos] ^= 1 << (f.plan.rand64(f.site, "flipbit", i) % 8)
	return out
}

// WriteBlob injects write-path faults: an ENOSPC-shaped error, or a torn
// write that persists only half the bytes under the full digest.
func (f *StoreFaults) WriteBlob(digest string, data []byte) ([]byte, error) {
	i := f.wIdx.Add(1) - 1
	r := f.plan.roll(f.site, "write", i)
	switch {
	case r < f.plan.NoSpacePM:
		f.reg.Counter("chaos_store_nospace_total").Inc()
		return nil, fmt.Errorf("chaos: injected write failure for blob %.12s: no space left on device", digest)
	case r < f.plan.NoSpacePM+f.plan.TornWritePM && len(data) > 1:
		f.reg.Counter("chaos_store_torn_writes_total").Inc()
		return data[:len(data)/2], nil
	}
	return data, nil
}

// PlantCorruptBlob writes garbage where storeDir's blob for digest lives
// (mirroring the cas on-disk layout), guaranteeing the next reader walks
// the detect → quarantine → refetch self-heal path.
func PlantCorruptBlob(storeDir, digest string) error {
	if len(digest) < 3 {
		return fmt.Errorf("chaos: invalid digest %q", digest)
	}
	path := filepath.Join(storeDir, "blobs", digest[:2], digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte("chaos: corrupted "+digest), 0o644)
}
