package core

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"firemarshal/internal/cas/remote"
	"firemarshal/internal/hostutil"
)

// cacheEnv is a testEnv whose Marshal uses an explicit (shareable) cache
// directory.
func newCacheEnv(t *testing.T, wlDir, cacheDir string) *testEnv {
	t.Helper()
	if wlDir == "" {
		wlDir = t.TempDir()
	}
	workDir := t.TempDir()
	m, err := New(workDir, wlDir)
	if err != nil {
		t.Fatal(err)
	}
	m.CacheDir = cacheDir
	return &testEnv{m: m, wlDir: wlDir, workDir: workDir}
}

func writeChain(t *testing.T, e *testEnv) {
	t.Helper()
	e.write(t, "p1.json", `{"name":"p1","base":"br-base","command":"echo 1"}`)
	e.write(t, "p2.json", `{"name":"p2","base":"p1","command":"echo 2"}`)
	e.write(t, "p3.json", `{"name":"p3","base":"p2","command":"echo 3"}`)
	e.write(t, "w.json", `{"name":"w","base":"p3","command":"echo leaf"}`)
}

func hashArtifacts(t *testing.T, dir string) map[string]bool {
	t.Helper()
	distinct := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		distinct[hostutil.HashBytes(data)] = true
	}
	return distinct
}

// A fresh checkout (new workdir, no state DB, no artifacts) sharing a warm
// cache rebuilds a ≥3-deep inheritance chain with zero build actions —
// every task is served from the action cache.
func TestBuildRestoresDeepChainFromCache(t *testing.T) {
	cacheDir := t.TempDir()

	cold := newCacheEnv(t, "", cacheDir)
	writeChain(t, cold)
	if _, err := cold.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(cold.m.LastBuildStats.Executed) == 0 {
		t.Fatal("cold build should execute tasks")
	}

	warm := newCacheEnv(t, cold.wlDir, cacheDir)
	results, err := warm.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	st := warm.m.LastBuildStats
	if len(st.Executed) != 0 {
		t.Fatalf("warm build executed %v, want zero build actions", st.Executed)
	}
	if len(st.Restored) == 0 {
		t.Fatal("warm build restored nothing")
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("cache stats report no hits: %+v", st.Cache)
	}
	// Restored artifacts are byte-identical to the originals.
	for _, pair := range [][2]string{
		{cold.m.BinPath("w"), results[0].Bin},
		{cold.m.ImgPath("w"), results[0].Img},
	} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if hostutil.HashBytes(a) != hostutil.HashBytes(b) {
			t.Fatalf("restored artifact %s differs from original", pair[1])
		}
	}
}

// Two distinct workloads sharing a base store their common artifacts
// exactly once: the CAS blob count equals the number of distinct artifact
// contents, not the number of artifact files.
func TestSharedBaseArtifactsStoredOnce(t *testing.T) {
	e := newEnv(t)
	e.write(t, "p.json", `{"name":"p","base":"br-base","command":"echo base"}`)
	e.write(t, "c1.json", `{"name":"c1","base":"p","command":"echo one"}`)
	e.write(t, "c2.json", `{"name":"c2","base":"p","command":"echo two"}`)
	if _, err := e.m.Build("c1", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.m.Build("c2", BuildOpts{}); err != nil {
		t.Fatal(err)
	}

	// c1 and c2 change no boot-binary input, so all bins are copies of the
	// base's — one blob among them.
	c1bin, _ := os.ReadFile(e.m.BinPath("c1"))
	c2bin, _ := os.ReadFile(e.m.BinPath("c2"))
	if hostutil.HashBytes(c1bin) != hostutil.HashBytes(c2bin) {
		t.Fatal("siblings should share the parent's boot binary")
	}

	distinct := hashArtifacts(t, filepath.Join(e.workDir, "images"))
	c, err := e.m.Cache()
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.Local().Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Blobs != len(distinct) {
		t.Fatalf("store holds %d blobs for %d distinct artifact contents — common artifacts not deduplicated", u.Blobs, len(distinct))
	}
	if u.Blobs >= 6 {
		// 4 bins share 1 blob; images differ per baked command.
		t.Fatalf("blob count %d implausibly high (bins not shared?)", u.Blobs)
	}
}

// End-to-end remote round trip: a build on "machine A" publishes through
// the HTTP cache server; "machine B" (empty workdir AND empty local cache)
// rebuilds purely from remote hits.
func TestBuildRemoteCacheRoundTrip(t *testing.T) {
	serverStore := newCacheEnv(t, "", t.TempDir()) // host checkout backing the server
	writeChain(t, serverStore)
	serverCache, err := serverStore.m.Cache()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.NewServer(serverCache.Local()))
	defer srv.Close()

	a := newCacheEnv(t, serverStore.wlDir, t.TempDir())
	a.m.RemoteCache = srv.URL
	if _, err := a.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(a.m.LastBuildStats.Executed) == 0 {
		t.Fatal("machine A should have built")
	}

	b := newCacheEnv(t, serverStore.wlDir, t.TempDir())
	b.m.RemoteCache = srv.URL
	if _, err := b.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	st := b.m.LastBuildStats
	if len(st.Executed) != 0 {
		t.Fatalf("machine B executed %v, want pure remote restore", st.Executed)
	}
	if st.Cache.RemoteHits == 0 || st.Cache.RemoteBlobHits == 0 {
		t.Fatalf("no remote hits recorded: %+v", st.Cache)
	}
}

// An unreachable remote cache degrades the build to local-only operation:
// it succeeds, and the failure is visible in the stats.
func TestBuildUnreachableRemoteFallsBack(t *testing.T) {
	e := newEnv(t)
	// A listener that is immediately closed: connection refused, fast.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	e.m.RemoteCache = deadURL
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x"}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatalf("build must succeed with unreachable remote: %v", err)
	}
	if len(results) != 1 || results[0].Bin == "" {
		t.Fatal("missing build results")
	}
	if e.m.LastBuildStats.Cache.RemoteErrors == 0 {
		t.Fatal("remote errors not surfaced in build stats")
	}
	// And the local cache still works: a fresh checkout restores.
	warm := newCacheEnv(t, e.wlDir, e.m.EffectiveCacheDir())
	if _, err := warm.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(warm.m.LastBuildStats.Executed) != 0 {
		t.Fatal("local cache should have served the rebuild")
	}
}

// Clean garbage-collects cache entries unreferenced by any remaining
// workload state and reports reclaimed bytes, while entries still
// referenced by other workloads survive.
func TestCleanPrunesUnreferencedCacheEntries(t *testing.T) {
	e := newEnv(t)
	e.write(t, "p.json", `{"name":"p","base":"br-base","command":"echo base"}`)
	e.write(t, "c1.json", `{"name":"c1","base":"p","command":"echo one"}`)
	e.write(t, "c2.json", `{"name":"c2","base":"p","command":"echo two"}`)
	if _, err := e.m.Build("c1", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.m.Build("c2", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.m.Cache()
	before, _ := c.Local().Usage()

	gc, err := e.m.Clean("c1")
	if err != nil {
		t.Fatal(err)
	}
	if gc.BytesReclaimed == 0 || gc.ActionsRemoved == 0 {
		t.Fatalf("clean reclaimed nothing: %+v", gc)
	}
	after, _ := c.Local().Usage()
	if after.Blobs >= before.Blobs {
		t.Fatalf("blob count %d -> %d, want a decrease", before.Blobs, after.Blobs)
	}

	// c2 (and the shared base) must still be served from the cache: wipe
	// its artifacts and state, rebuild from cache alone.
	warm := newCacheEnv(t, e.wlDir, e.m.EffectiveCacheDir())
	if _, err := warm.m.Build("c2", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(warm.m.LastBuildStats.Executed) != 0 {
		t.Fatalf("c2 rebuild executed %v after cleaning c1", warm.m.LastBuildStats.Executed)
	}

	// Cleaning c2 as well prunes its entries too; what survives is the
	// shared parent chain (p, br-base), which Clean of a child never drops.
	if _, err := e.m.Clean("c2"); err != nil {
		t.Fatal(err)
	}
	final, _ := c.Local().Usage()
	if final.Actions >= after.Actions {
		t.Fatalf("actions %d -> %d after cleaning c2, want a decrease", after.Actions, final.Actions)
	}
}
