package core

import (
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
)

// buildTrivialExe assembles a minimal bare-metal guest program.
func buildTrivialExe(t *testing.T) []byte {
	t.Helper()
	exe, err := asm.Assemble(`
_start:
    li a0, 0
    li a7, 93
    ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return isa.EncodeExecutable(exe)
}

// buildPFATouchExe builds a program that touches remote page `page` and
// prints "touched,<first-byte>".
func buildPFATouchExe(t *testing.T, page int) []byte {
	t.Helper()
	src := `
.equ PFA, 0x55000000
.equ REMOTE, 0x40000000
_start:
    li t0, PFA
    li t1, 1
    sd t1, 0x00(t0)
    li t1, REMOTE
    li t2, ` + itoa(page*4096) + `
    add t1, t1, t2
    lbu s0, 0(t1)
    la a1, msg
    li a2, 8
    li a0, 1
    li a7, 64
    ecall
    mv a0, s0
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
msg: .ascii "touched,"
`
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return isa.EncodeExecutable(exe)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
