// `marshal verify-farm`: the continuous differential-verification farm.
// Locally it runs verify.RunFarm straight against this checkout's cache;
// with -workers it shards the seed list across a worker fleet via the
// distributed launcher, then merges the shard manifests into one global
// view (coverage unioned, signatures re-deduped). Either way the result
// is a JSONL farm manifest plus minimized repro workloads in the CAS.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"firemarshal/internal/launcher"
	"firemarshal/internal/launcher/remote"
	"firemarshal/internal/verify"
)

// VerifyOpts configures a farm session.
type VerifyOpts struct {
	// Seeds generates the round-0 corpus; required.
	Seeds []int64
	// Rounds/Mutations/MaxEntries/MaxInstrs/CkptEvery/RTLEvery/FarmSeed
	// mirror verify.FarmOptions.
	Rounds     int
	Mutations  int
	MaxEntries int
	MaxInstrs  uint64
	CkptEvery  uint64
	RTLEvery   int
	FarmSeed   int64
	// Fault is the seeded-fault self-test hook ("tier:instr:reg:xor").
	Fault string
	// Jobs is per-machine evaluation parallelism.
	Jobs int
	// Timeout time-boxes the whole session (0 = unbounded).
	Timeout time.Duration
	// Out is the merged manifest path (default <workdir>/verify/farm.jsonl).
	Out string

	// Workers, when non-empty, shards the farm across a fleet; the
	// remaining fields tune the coordinator exactly as LaunchOpts does.
	Workers        []string
	WorkerLeaseTTL time.Duration
	WorkerPoll     time.Duration
}

// VerifyResult is what a farm session (local or fleet) produced.
type VerifyResult struct {
	*verify.FarmSummary
	// Manifest is where the (merged) JSONL manifest was written.
	Manifest string
}

// VerifyFarm runs one verification-farm session.
func (m *Marshal) VerifyFarm(ctx context.Context, opts VerifyOpts) (*VerifyResult, error) {
	if len(opts.Seeds) == 0 {
		return nil, fmt.Errorf("core: verify-farm needs at least one seed (-seeds)")
	}
	var fault *verify.Fault
	if opts.Fault != "" {
		var err error
		if fault, err = verify.ParseFault(opts.Fault); err != nil {
			return nil, err
		}
	}
	out := opts.Out
	if out == "" {
		out = filepath.Join(m.WorkDir, "verify", "farm.jsonl")
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return nil, err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if len(opts.Workers) > 0 {
		return m.verifyFleet(ctx, opts, out)
	}

	cache, err := m.Cache()
	if err != nil {
		return nil, err
	}
	// A fresh session's manifest must not append to a prior one's.
	if err := os.Remove(out); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	jnl, err := launcher.OpenJournal(out)
	if err != nil {
		return nil, err
	}
	defer jnl.Close()
	sum, err := verify.RunFarm(verify.FarmOptions{
		Store:      cache.Local(),
		Journal:    jnl,
		Seeds:      opts.Seeds,
		Rounds:     opts.Rounds,
		Mutations:  opts.Mutations,
		MaxEntries: opts.MaxEntries,
		MaxInstrs:  opts.MaxInstrs,
		CkptEvery:  opts.CkptEvery,
		RTLEvery:   opts.RTLEvery,
		FarmSeed:   opts.FarmSeed,
		Fault:      fault,
		Jobs:       opts.Jobs,
		Obs:        m.Obs,
		Log:        m.Log,
		Ctx:        ctx,
	})
	if err != nil {
		return nil, err
	}
	return &VerifyResult{FarmSummary: sum, Manifest: out}, nil
}

// verifyFleet shards the seed list round-robin across the fleet, runs
// each shard as one distributed job, and merges the shard manifests.
// Workloads regenerate deterministically from seeds on the worker, so
// shard specs carry parameters only — no artifacts are published
// forward, yet repros and manifests flow back through the shared cache
// like any job output.
func (m *Marshal) verifyFleet(ctx context.Context, opts VerifyOpts, out string) (*VerifyResult, error) {
	cache, err := m.Cache()
	if err != nil {
		return nil, err
	}
	if cache.Remote() == nil {
		return nil, fmt.Errorf("core: distributed verify-farm needs a shared artifact cache: set -remote-cache to a `marshal cache serve` server every worker can reach")
	}

	nShards := len(opts.Workers)
	if len(opts.Seeds) < nShards {
		nShards = len(opts.Seeds)
	}
	specs := make([]remote.JobSpec, nShards)
	for i := range specs {
		var seeds []int64
		for j := i; j < len(opts.Seeds); j += nShards {
			seeds = append(seeds, opts.Seeds[j])
		}
		maxEntries := 0
		if opts.MaxEntries > 0 {
			// Split the global cap evenly; shard i gets the remainder slot
			// when the cap does not divide (matches the seed round-robin).
			maxEntries = opts.MaxEntries / nShards
			if i < opts.MaxEntries%nShards {
				maxEntries++
			}
			if maxEntries == 0 {
				maxEntries = 1
			}
		}
		specs[i] = remote.JobSpec{
			Name: fmt.Sprintf("verify-shard-%d", i),
			Sim:  "verify",
			Verify: &remote.VerifySpec{
				Seeds:      seeds,
				Rounds:     opts.Rounds,
				Mutations:  opts.Mutations,
				MaxEntries: maxEntries,
				MaxInstrs:  opts.MaxInstrs,
				CkptEvery:  opts.CkptEvery,
				RTLEvery:   opts.RTLEvery,
				// Offset the farm seed so shards mutate independently.
				FarmSeed: opts.FarmSeed + int64(i)*1_000_003,
				Fault:    opts.Fault,
			},
		}
	}

	// Collect each shard's manifest digest; merge AFTER Launch returns so
	// the merged manifest is deterministic in shard order, not completion
	// order.
	fleetJnl, err := launcher.OpenJournal(filepath.Join(filepath.Dir(out), "fleet.jsonl"))
	if err != nil {
		return nil, err
	}
	defer fleetJnl.Close()
	manifests := make([]string, nShards)
	_, err = remote.Launch(ctx, specs, remote.CoordOptions{
		Workers:  opts.Workers,
		Journal:  fleetJnl,
		LeaseTTL: opts.WorkerLeaseTTL,
		Poll:     opts.WorkerPoll,
		Obs:      m.Obs,
		Log:      m.Log,
		OnDone: func(ev remote.Event) error {
			if ev.Record == nil || ev.Record.Status != launcher.StatusOK {
				return nil
			}
			var i int
			if _, err := fmt.Sscanf(ev.Job, "verify-shard-%d", &i); err != nil || i < 0 || i >= nShards {
				return nil
			}
			manifests[i] = ev.Outputs[remote.VerifyManifestOutput]
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	shards := make([][]verify.FarmRecord, 0, nShards)
	sums := make([]*verify.FarmSummaryRecord, 0, nShards)
	for i, digest := range manifests {
		if digest == "" {
			m.logf("verify-farm: shard %d produced no manifest (failed or cancelled)", i)
			continue
		}
		data, err := fetchBlob(ctx, cache, digest)
		if err != nil {
			return nil, fmt.Errorf("core: fetching shard %d manifest: %w", i, err)
		}
		recs, sum, err := verify.ParseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d manifest: %w", i, err)
		}
		shards = append(shards, recs)
		sums = append(sums, sum)
	}
	merged := verify.MergeShards(shards, sums)

	// Pull every repro into the local store, then write the merged
	// manifest: entries in shard order plus a global summary line.
	for sig, digest := range merged.Repros {
		if _, err := fetchBlob(ctx, cache, digest); err != nil {
			return nil, fmt.Errorf("core: fetching repro for %s: %w", sig, err)
		}
	}
	if err := os.Remove(out); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	jnl, err := launcher.OpenJournal(out)
	if err != nil {
		return nil, err
	}
	defer jnl.Close()
	for _, rec := range merged.Records {
		if err := jnl.AppendLine(rec); err != nil {
			return nil, err
		}
	}
	if err := jnl.AppendLine(verify.FarmSummaryRecord{
		Event:       "summary",
		Entries:     merged.Entries,
		Divergences: merged.Divergences,
		Signatures:  merged.Signatures,
		Coverage:    merged.Coverage,
		Ratio:       merged.Coverage.Ratio(),
	}); err != nil {
		return nil, err
	}
	return &VerifyResult{FarmSummary: merged, Manifest: out}, nil
}
