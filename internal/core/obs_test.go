package core

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/obs"
	"firemarshal/internal/workgen"
)

// TestLaunchMetricsAndTrace is the observability acceptance gate:
// `launch -j 4 -metrics out.json` on the shared workgen workload must
// produce (1) a JSON metrics snapshot whose launcher counters match the
// manifest, (2) a span trace next to the manifest whose job and attempt
// counts match it exactly, and (3) nonzero simulator/dag activity in the
// registry — proof the whole stack reported in.
func TestLaunchMetricsAndTrace(t *testing.T) {
	e := newEnv(t)
	if _, err := workgen.EmitParallelWorkload(e.wlDir, 4, "test"); err != nil {
		t.Fatal(err)
	}
	// A private registry isolates the assertions from obs.Default, which
	// other tests in the process write into.
	e.m.Obs = obs.NewRegistry()
	metricsPath := filepath.Join(e.workDir, "out.json")

	results, err := e.m.Launch("parjobs", LaunchOpts{Jobs: 4, MetricsPath: metricsPath})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 4 {
		t.Fatalf("manifest has %d records, want 4", len(recs))
	}
	totalAttempts := 0
	for _, r := range recs {
		totalAttempts += r.Attempts
	}

	// Metrics snapshot: launcher counters must agree with the manifest.
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if got := snap.Counters["launcher_attempts_total"]; got != uint64(totalAttempts) {
		t.Errorf("launcher_attempts_total = %d, manifest says %d", got, totalAttempts)
	}
	if snap.Counters["sim_funcsim_instrs_total"] == 0 {
		t.Error("sim_funcsim_instrs_total = 0; the simulator never reported")
	}
	if snap.Counters["dag_node_builds_total"] == 0 {
		t.Error("dag_node_builds_total = 0; the build never reported")
	}
	// The trace-compiler counters register whenever the fast loop runs,
	// whether or not this workload goes hot enough to compile anything.
	for _, name := range []string{"sim_traces_built", "sim_trace_dispatch_hits", "sim_trace_invalidations"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("%s missing from the metrics snapshot", name)
		}
	}
	if _, ok := snap.Gauges["sim_trace_coverage"]; !ok {
		t.Error("sim_trace_coverage gauge missing from the metrics snapshot")
	}
	if snap.Histograms["launcher_queue_wait_us"].Count != uint64(len(recs)) {
		t.Errorf("launcher_queue_wait_us count = %d, want one observation per job (%d)",
			snap.Histograms["launcher_queue_wait_us"].Count, len(recs))
	}

	// Span trace: one job span per manifest record, attempts matching.
	traceData, err := os.ReadFile(e.m.TracePath("parjobs"))
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	jobSpans := map[string]int{}
	attemptSpans := map[string]int{}
	sawBuildNode := false
	sc := bufio.NewScanner(strings.NewReader(string(traceData)))
	for sc.Scan() {
		var line struct {
			Path string `json:"path"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if strings.HasPrefix(line.Path, "run/build/node:") {
			sawBuildNode = true
		}
		name, ok := strings.CutPrefix(line.Path, "run/job:")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			attemptSpans[name[:i]]++
		} else {
			jobSpans[name]++
		}
	}
	if len(jobSpans) != len(recs) {
		t.Errorf("trace has %d job spans, manifest has %d records", len(jobSpans), len(recs))
	}
	for _, r := range recs {
		if jobSpans[r.Job] != 1 {
			t.Errorf("job %s: %d job spans, want 1", r.Job, jobSpans[r.Job])
		}
		if attemptSpans[r.Job] != r.Attempts {
			t.Errorf("job %s: %d attempt spans, manifest says %d", r.Job, attemptSpans[r.Job], r.Attempts)
		}
	}
	if !sawBuildNode {
		t.Error("trace has no run/build/node: spans; the build phase never traced")
	}
}
