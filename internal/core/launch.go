package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"firemarshal/internal/boards"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/spec"
)

// LaunchOpts controls the launch command (§III-C).
type LaunchOpts struct {
	// Job selects one job of a multi-job workload ("" runs the root, or
	// every job in sequence when the workload only defines jobs).
	Job string
	// NoDisk boots the initramfs-embedded binary.
	NoDisk bool
	// Spike forces the Spike functional simulator variant even when the
	// workload doesn't request a custom one.
	Spike bool
	// Trace writes a per-instruction execution trace (the spike -l role)
	// to trace.log in the run directory. Slow; debugging only.
	Trace bool
	// ConsoleTee additionally streams serial output (interactive use).
	ConsoleTee io.Writer
}

// RunResult reports one completed launch.
type RunResult struct {
	Target    string
	OutputDir string
	Uartlog   string
	ExitCode  int64
	Cycles    uint64
	Simulator string
}

// Launch builds the workload and runs it in functional simulation,
// collecting outputs and running the post-run hook (§III-C).
func (m *Marshal) Launch(nameOrPath string, opts LaunchOpts) ([]*RunResult, error) {
	buildOpts := BuildOpts{NoDisk: opts.NoDisk}
	if _, err := m.Build(nameOrPath, buildOpts); err != nil {
		return nil, err
	}
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return nil, err
	}

	var targets []Target
	if opts.Job != "" {
		tgt, err := FindTarget(w, opts.Job)
		if err != nil {
			return nil, err
		}
		targets = []Target{tgt}
	} else if len(w.Jobs) > 0 {
		// Functional simulation has no inter-job network model (§VI), so
		// multi-job workloads launch their jobs independently, in order.
		targets = Targets(w)[1:]
	} else {
		targets = Targets(w)
	}

	var results []*RunResult
	for _, tgt := range targets {
		res, err := m.launchTarget(tgt, opts)
		if err != nil {
			return results, fmt.Errorf("core: launching %s: %w", tgt.Name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func (m *Marshal) launchTarget(tgt Target, opts LaunchOpts) (*RunResult, error) {
	w := tgt.Workload
	boot, rootfs, err := m.loadArtifacts(tgt, opts.NoDisk)
	if err != nil {
		return nil, err
	}

	runDir := m.RunDir(tgt.Name)
	if err := os.RemoveAll(runDir); err != nil {
		return nil, err
	}

	variant := "qemu"
	if opts.Spike || w.EffectiveSpike() != "" {
		variant = "spike"
	}
	fcfg := funcsim.Config{
		Variant:   variant,
		ExtraArgs: append(w.EffectiveQemuArgs(), w.EffectiveSpikeArgs()...),
	}
	if opts.Trace {
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			return nil, err
		}
		traceFile, err := os.Create(filepath.Join(runDir, "trace.log"))
		if err != nil {
			return nil, err
		}
		defer traceFile.Close()
		fcfg.Trace = traceFile
	}
	platform := funcsim.New(fcfg)

	drivers, err := boards.DeviceProfile(w.EffectiveSpike(), boards.ProfileOpts{
		RemotePages: pfaPagesFromArgs(fcfg.ExtraArgs),
	})
	if err != nil {
		return nil, err
	}

	var console bytes.Buffer
	var sink io.Writer = &console
	if opts.ConsoleTee != nil {
		sink = io.MultiWriter(&console, opts.ConsoleTee)
	}
	m.logf("launching %s on %s", tgt.Name, variant)
	bootRes, err := guestos.Boot(guestos.BootOpts{
		Boot:     boot,
		Disk:     rootfs,
		Platform: platform,
		Console:  sink,
		Drivers:  drivers,
		PkgRepo:  guestos.DefaultRepo(),
	})
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Target:    tgt.Name,
		OutputDir: runDir,
		Uartlog:   filepath.Join(runDir, "uartlog"),
		ExitCode:  bootRes.ExitCode,
		Cycles:    bootRes.Cycles,
		Simulator: variant,
	}
	if err := hostutil.WriteFileAtomic(res.Uartlog, console.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if err := extractOutputs(bootRes.FinalFS, EffectiveOutputs(w), runDir); err != nil {
		return nil, err
	}
	if err := m.runPostRunHook(w, runDir); err != nil {
		return nil, err
	}
	return res, nil
}

// pfaPagesFromArgs extracts the --pfa-pages=N simulator argument (the
// workload's spike-args), sizing the golden model's emulated remote region.
func pfaPagesFromArgs(args []string) int {
	for _, arg := range args {
		var n int
		if _, err := fmt.Sscanf(arg, "--pfa-pages=%d", &n); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// loadArtifacts reads the built boot binary and disk image for a target.
func (m *Marshal) loadArtifacts(tgt Target, noDisk bool) (*firmware.BootBinary, *fsimg.FS, error) {
	binPath := m.BinPath(tgt.Name)
	if noDisk {
		binPath = m.NoDiskBinPath(tgt.Name)
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		return nil, nil, fmt.Errorf("core: target %s has no boot binary (bare-metal base without bin?): %w", tgt.Name, err)
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return nil, nil, err
	}
	var rootfs *fsimg.FS
	if !noDisk && !boot.IsBare() {
		imgData, err := os.ReadFile(m.ImgPath(tgt.Name))
		if err != nil {
			return nil, nil, fmt.Errorf("core: target %s has no disk image: %w", tgt.Name, err)
		}
		rootfs, err = fsimg.Decode(imgData)
		if err != nil {
			return nil, nil, err
		}
	}
	return boot, rootfs, nil
}

// extractOutputs copies the workload's declared output paths from the final
// filesystem state into the run directory (§III-C: "FireMarshal copies any
// output files and the serial port log to an output directory").
func extractOutputs(fs *fsimg.FS, outputs []string, runDir string) error {
	if fs == nil {
		return nil
	}
	for _, out := range outputs {
		node := fs.Lookup(out)
		if node == nil {
			// Missing outputs are not fatal: the workload may have decided
			// not to produce one. The gap will surface during test.
			continue
		}
		if node.IsDir() {
			err := fs.Walk(func(p string, f *fsimg.File) error {
				if f.IsDir() || !withinGuestDir(p, out) {
					return nil
				}
				rel, err := filepath.Rel(out, p)
				if err != nil {
					return err
				}
				return hostutil.WriteFileAtomic(filepath.Join(runDir, filepath.Base(out), rel), f.Data, 0o644)
			})
			if err != nil {
				return err
			}
			continue
		}
		if err := hostutil.WriteFileAtomic(filepath.Join(runDir, filepath.Base(out)), node.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func withinGuestDir(p, dir string) bool {
	if dir == "/" {
		return true
	}
	return p == dir || (len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/')
}

// runPostRunHook executes the workload's post-run hook against the run
// output directory.
func (m *Marshal) runPostRunHook(w *spec.Workload, runDir string) error {
	hook, dir := EffectivePostRunHook(w)
	if hook == "" {
		return nil
	}
	m.logf("running post-run-hook %s", hook)
	abs, err := filepath.Abs(runDir)
	if err != nil {
		return err
	}
	if _, err := hostutil.RunHostScript(hook, dir, abs); err != nil {
		return fmt.Errorf("core: post-run-hook: %w", err)
	}
	return nil
}
