package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"firemarshal/internal/boards"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/spec"
)

// LaunchOpts controls the launch command (§III-C).
type LaunchOpts struct {
	// Job selects one job of a multi-job workload ("" runs the root, or
	// every job of a jobs-only workload).
	Job string
	// NoDisk boots the initramfs-embedded binary.
	NoDisk bool
	// Spike forces the Spike functional simulator variant even when the
	// workload doesn't request a custom one.
	Spike bool
	// Trace writes a per-instruction execution trace (the spike -l role)
	// to trace.log in the run directory. Slow; debugging only.
	Trace bool
	// ConsoleTee additionally streams serial output (interactive use).
	// With more than one job in flight the tee is suppressed — interleaved
	// serial output is useless; per-job uartlogs carry the full streams.
	ConsoleTee io.Writer

	// Jobs caps how many job simulations run concurrently
	// (`marshal launch -j N`). <=0 means GOMAXPROCS; 1 runs sequentially.
	// Builds fan out across the same number of workers.
	Jobs int
	// JobTimeout kills any single job attempt exceeding it (0 = none).
	// The kill is cooperative — each machine polls its Stop channel — so
	// a hung job dies without stalling siblings. Timeouts are not retried.
	JobTimeout time.Duration
	// Retries re-attempts transiently-failing jobs with exponential
	// backoff (total attempts = Retries+1).
	Retries int
	// RetryBackoff is the base delay between attempts (default 250ms).
	RetryBackoff time.Duration
	// Context, when non-nil, kills in-flight jobs on cancellation — the
	// second-Ctrl-C path.
	Context context.Context
	// Drain, when closed, stops starting new jobs while in-flight jobs
	// run to completion — the first-Ctrl-C path.
	Drain <-chan struct{}

	// Workers, when non-empty, distributes the launch across a fleet of
	// `marshal worker serve` daemons (`-workers host1:port,host2:port`)
	// instead of local simulation slots. Requires RemoteCache — artifacts,
	// consoles, outputs, and checkpoints all travel through the shared
	// cache; the coordinator journals every worker event, so `-resume`,
	// the manifest, and crash recovery behave exactly as locally.
	Workers []string
	// WorkerLeaseTTL bounds how long a worker may go silent before the
	// coordinator declares it dead and re-leases its jobs; WorkerPoll is
	// the coordinator's event-poll cadence. Zero uses protocol defaults.
	WorkerLeaseTTL time.Duration
	WorkerPoll     time.Duration
	// WorkerTransport, when set, wraps the coordinator's worker-client
	// HTTP transport (chaos fault injection).
	WorkerTransport http.RoundTripper
	// HedgeAfter, when nonzero, duplicates a started job onto an idle
	// healthy worker once its lease is older than this without a terminal
	// event — stragglers stop gating the run; determinism makes the
	// duplicate execution benign (first terminal event wins).
	HedgeAfter time.Duration

	// Resume continues an interrupted run (`marshal launch -resume`): jobs
	// the run journal records as ok carry their results over, jobs with a
	// live checkpoint restore mid-flight, and the rest run from scratch.
	// The compacted manifest is bit-identical to an uninterrupted run's
	// (wall-clock fields aside).
	Resume bool
	// CkptEvery, when nonzero, snapshots each job's machine state into the
	// artifact cache every N retired instructions (`-ckpt-every N`), so a
	// crashed or killed run can resume without losing in-flight work.
	CkptEvery uint64

	// MetricsPath, when set, writes a JSON metrics snapshot there after
	// the run (`marshal launch -metrics FILE`): every counter, gauge, and
	// histogram the run's layers reported into the registry.
	MetricsPath string
}

// RunResult reports one completed launch.
type RunResult struct {
	Target    string
	OutputDir string
	Uartlog   string
	ExitCode  int64
	Cycles    uint64
	Simulator string
}

// Launch builds the workload and runs it in functional simulation,
// collecting outputs and running the post-run hook (§III-C). The spec is
// loaded exactly once; the resolved workload flows through build and
// launch (see BuildWorkload).
func (m *Marshal) Launch(nameOrPath string, opts LaunchOpts) ([]*RunResult, error) {
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return nil, err
	}
	return m.LaunchWorkload(w, opts)
}

// LaunchWorkload builds and launches an already-resolved workload,
// fanning independent jobs across the parallel launcher (§IV-B: parallel
// job simulation turned "two weeks into two days"). Each job gets an
// isolated machine, console buffer, and run directory; results aggregate
// into a JSONL run manifest (ManifestPath) and the LastLaunch summary.
func (m *Marshal) LaunchWorkload(w *spec.Workload, opts LaunchOpts) ([]*RunResult, error) {
	// The whole run — build phase included — traces under one root span.
	// The trace is written next to the manifest even on failure, so an
	// aborted run still leaves a (partial but well-formed) trace behind.
	tracer := obs.NewTracer()
	runSpan := tracer.Start("run")
	m.runSpan = runSpan
	defer func() {
		m.runSpan = nil
		runSpan.End()
		m.writeObsFiles(tracer, w.Name, opts.MetricsPath)
	}()

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// Remote-cache requests issued anywhere in this run — build-phase
	// restores, checkpoint uploads — inherit the run context, so killing
	// the run aborts its in-flight transfers too.
	if cache, err := m.Cache(); err == nil {
		cache.SetContext(ctx)
		defer cache.SetContext(nil)
	}

	if _, err := m.BuildWorkload(w, BuildOpts{NoDisk: opts.NoDisk, Jobs: opts.Jobs}); err != nil {
		return nil, err
	}

	var targets []Target
	if opts.Job != "" {
		tgt, err := FindTarget(w, opts.Job)
		if err != nil {
			return nil, err
		}
		targets = []Target{tgt}
	} else if len(w.Jobs) > 0 {
		// Functional simulation has no inter-job network model (§VI), so
		// multi-job workloads launch their jobs independently.
		targets = Targets(w)[1:]
	} else {
		targets = Targets(w)
	}

	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tee := opts.ConsoleTee
	if workers > 1 && len(targets) > 1 {
		tee = nil
	}

	manifestPath := m.ManifestPath(w.Name)
	journalPath := m.JournalPath(w.Name)

	// Resume: reconstruct the interrupted run's per-job outcomes from its
	// journal (or, if it already compacted, its manifest).
	var prior map[string]launcher.PriorJob
	if opts.Resume {
		var torn *launcher.Torn
		var err error
		prior, torn, err = launcher.ReadPrior(journalPath, manifestPath)
		if err != nil {
			return nil, err
		}
		if torn != nil {
			m.logf("resume: salvaged journal around %s", torn)
		}
	}

	if err := os.MkdirAll(filepath.Dir(journalPath), 0o755); err != nil {
		return nil, err
	}
	jnl, err := launcher.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	defer jnl.Close()

	order := make([]string, len(targets))
	carried := map[string]launcher.Result{}
	results := make([]*RunResult, len(targets))
	var jobs []launcher.Job
	for i, tgt := range targets {
		i, tgt := i, tgt
		order[i] = tgt.Name
		if p, ok := prior[tgt.Name]; ok && p.Done && p.Record.Status == launcher.StatusOK {
			// Completed before the interruption: carry the recorded result
			// and re-journal it, so a crash during THIS run still knows it.
			carried[tgt.Name] = launcher.CarriedResult(p.Record)
			if err := jnl.Done(p.Record); err != nil {
				return nil, err
			}
			results[i] = m.carriedRunResult(tgt, opts, p.Record)
			m.logf("resume: %s already ok (attempts=%d), carrying result", tgt.Name, p.Record.Attempts)
			continue
		}
		priorAttempts := 0
		if p, ok := prior[tgt.Name]; ok {
			priorAttempts = p.Attempts
			if p.InFlight {
				m.logf("resume: %s was in flight; restoring from its latest checkpoint if one exists", tgt.Name)
			}
		}
		jobs = append(jobs, launcher.Job{
			Name:    tgt.Name,
			Prior:   priorAttempts,
			Resumed: opts.Resume && priorAttempts > 0,
			Run: func(jctx context.Context, attempt int) (launcher.Metrics, error) {
				if attempt > 1 {
					m.logf("relaunching %s (attempt %d)", tgt.Name, attempt)
				}
				res, err := m.launchTarget(jctx, tgt, opts, tee)
				if err != nil {
					return launcher.Metrics{}, err
				}
				results[i] = res
				return launcher.Metrics{ExitCode: res.ExitCode, Cycles: res.Cycles}, nil
			},
		})
	}
	var summary *launcher.Summary
	if len(opts.Workers) > 0 {
		summary, err = m.launchFleet(ctx, targets, opts, jnl, prior, carried, results)
		if err != nil {
			return nil, err
		}
	} else {
		pool := launcher.New(launcher.Options{
			Workers: workers,
			Timeout: opts.JobTimeout,
			Retries: opts.Retries,
			Backoff: opts.RetryBackoff,
			Drain:   opts.Drain,
			Log:     m.Log,
			Journal: jnl,
			Obs:     m.Obs,
			Span:    runSpan,
		})
		summary = pool.Run(ctx, jobs)
	}
	merged := launcher.MergeResumed(order, carried, summary)
	m.LastLaunch = merged
	m.LastManifest = manifestPath
	jnl.Close()
	if err := launcher.Compact(journalPath, manifestPath, merged); err != nil {
		return nil, err
	}

	// Checkpoints of terminally-finished jobs are dead state; cancelled
	// and skipped jobs keep theirs for a later -resume.
	for _, r := range merged.Jobs {
		switch r.Status {
		case launcher.StatusOK, launcher.StatusFailed, launcher.StatusTimeout:
			if err := checkpoint.Clear(m.CkptDir(), r.Name); err != nil {
				m.logf("clearing checkpoint for %s: %v", r.Name, err)
			}
		}
	}

	out := make([]*RunResult, 0, len(targets))
	for _, r := range results {
		if r != nil {
			out = append(out, r)
		}
	}
	if err := merged.Err(); err != nil {
		return out, fmt.Errorf("core: %w", err)
	}
	return out, nil
}

// writeObsFiles persists the run's observability artifacts: the span
// trace next to the manifest, and (when requested) a metrics snapshot.
// Failures are logged, never fatal — observability must not fail a run
// that otherwise succeeded.
func (m *Marshal) writeObsFiles(tracer *obs.Tracer, name, metricsPath string) {
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err == nil {
		if err := hostutil.WriteFileAtomic(m.TracePath(name), buf.Bytes(), 0o644); err != nil {
			m.logf("writing trace: %v", err)
		}
	}
	if metricsPath != "" {
		if err := hostutil.WriteFileAtomic(metricsPath, m.Obs.EncodeSnapshot(), 0o644); err != nil {
			m.logf("writing metrics snapshot: %v", err)
		}
	}
}

// carriedRunResult reconstructs a RunResult for a job carried over from an
// interrupted run: its outputs are already on disk in its run directory.
func (m *Marshal) carriedRunResult(tgt Target, opts LaunchOpts, rec launcher.Record) *RunResult {
	variant := "qemu"
	if opts.Spike || tgt.Workload.EffectiveSpike() != "" {
		variant = "spike"
	}
	runDir := m.RunDir(tgt.Name)
	return &RunResult{
		Target:    tgt.Name,
		OutputDir: runDir,
		Uartlog:   filepath.Join(runDir, "uartlog"),
		ExitCode:  rec.Exit,
		Cycles:    rec.Cycles,
		Simulator: variant,
	}
}

// launchTarget runs one job: its own funcsim platform, machine, console
// buffer, and run directory, so concurrent jobs share no mutable state.
// The job context's Done channel is threaded into the machine as its
// cooperative kill switch.
func (m *Marshal) launchTarget(ctx context.Context, tgt Target, opts LaunchOpts, tee io.Writer) (*RunResult, error) {
	w := tgt.Workload
	boot, rootfs, err := m.loadArtifacts(tgt, opts.NoDisk)
	if err != nil {
		return nil, err
	}

	runDir := m.RunDir(tgt.Name)
	if err := os.RemoveAll(runDir); err != nil {
		return nil, err
	}

	variant := "qemu"
	if opts.Spike || w.EffectiveSpike() != "" {
		variant = "spike"
	}
	fcfg := funcsim.Config{
		Variant:   variant,
		ExtraArgs: append(w.EffectiveQemuArgs(), w.EffectiveSpikeArgs()...),
		Stop:      ctx.Done(),
		Obs:       m.Obs,
	}
	if opts.Trace {
		if err := os.MkdirAll(runDir, 0o755); err != nil {
			return nil, err
		}
		traceFile, err := os.Create(filepath.Join(runDir, "trace.log"))
		if err != nil {
			return nil, err
		}
		defer traceFile.Close()
		fcfg.Trace = traceFile
	}

	drivers, err := boards.DeviceProfile(w.EffectiveSpike(), boards.ProfileOpts{
		RemotePages: pfaPagesFromArgs(fcfg.ExtraArgs),
	})
	if err != nil {
		return nil, err
	}

	// Checkpointing captures pure machine state; device-driver hooks and
	// tracing sit outside it, so those configurations run unprotected.
	if (opts.CkptEvery > 0 || opts.Resume) && len(drivers) == 0 && !opts.Trace {
		cache, err := m.Cache()
		if err != nil {
			return nil, err
		}
		rt, err := checkpoint.Open(checkpoint.Config{
			Store: cache.Local(),
			Dir:   m.CkptDir(),
			Job:   tgt.Name,
			Every: opts.CkptEvery,
			Obs:   m.Obs,
			// The launcher threads each attempt's span through the job
			// context, so checkpoint/restore spans nest under the attempt.
			Span: obs.SpanFromContext(ctx),
		}, opts.Resume)
		if err != nil {
			return nil, err
		}
		if rt.Resuming() {
			m.logf("resume: %s restoring from checkpoint", tgt.Name)
		}
		fcfg.Ckpt = rt
	}
	platform := funcsim.New(fcfg)

	var console bytes.Buffer
	var sink io.Writer = &console
	if tee != nil {
		sink = io.MultiWriter(&console, tee)
	}
	m.logf("launching %s on %s", tgt.Name, variant)
	bootRes, err := guestos.Boot(guestos.BootOpts{
		Boot:     boot,
		Disk:     rootfs,
		Platform: platform,
		Console:  sink,
		Drivers:  drivers,
		PkgRepo:  guestos.DefaultRepo(),
	})
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Target:    tgt.Name,
		OutputDir: runDir,
		Uartlog:   filepath.Join(runDir, "uartlog"),
		ExitCode:  bootRes.ExitCode,
		Cycles:    bootRes.Cycles,
		Simulator: variant,
	}
	if err := hostutil.WriteFileAtomic(res.Uartlog, console.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if err := extractOutputs(bootRes.FinalFS, EffectiveOutputs(w), runDir); err != nil {
		return nil, err
	}
	if err := m.runPostRunHook(w, runDir); err != nil {
		return nil, err
	}
	return res, nil
}

// pfaPagesFromArgs extracts the --pfa-pages=N simulator argument (the
// workload's spike-args), sizing the golden model's emulated remote region.
func pfaPagesFromArgs(args []string) int {
	for _, arg := range args {
		var n int
		if _, err := fmt.Sscanf(arg, "--pfa-pages=%d", &n); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// loadArtifacts reads the built boot binary and disk image for a target.
func (m *Marshal) loadArtifacts(tgt Target, noDisk bool) (*firmware.BootBinary, *fsimg.FS, error) {
	binPath := m.BinPath(tgt.Name)
	if noDisk {
		binPath = m.NoDiskBinPath(tgt.Name)
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		return nil, nil, fmt.Errorf("core: target %s has no boot binary (bare-metal base without bin?): %w", tgt.Name, err)
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return nil, nil, err
	}
	var rootfs *fsimg.FS
	if !noDisk && !boot.IsBare() {
		imgData, err := os.ReadFile(m.ImgPath(tgt.Name))
		if err != nil {
			return nil, nil, fmt.Errorf("core: target %s has no disk image: %w", tgt.Name, err)
		}
		rootfs, err = fsimg.Decode(imgData)
		if err != nil {
			return nil, nil, err
		}
	}
	return boot, rootfs, nil
}

// extractOutputs copies the workload's declared output paths from the final
// filesystem state into the run directory (§III-C: "FireMarshal copies any
// output files and the serial port log to an output directory").
func extractOutputs(fs *fsimg.FS, outputs []string, runDir string) error {
	if fs == nil {
		return nil
	}
	for _, out := range outputs {
		node := fs.Lookup(out)
		if node == nil {
			// Missing outputs are not fatal: the workload may have decided
			// not to produce one. The gap will surface during test.
			continue
		}
		if node.IsDir() {
			err := fs.Walk(func(p string, f *fsimg.File) error {
				if f.IsDir() || !withinGuestDir(p, out) {
					return nil
				}
				rel, err := filepath.Rel(out, p)
				if err != nil {
					return err
				}
				return hostutil.WriteFileAtomic(filepath.Join(runDir, filepath.Base(out), rel), f.Data, 0o644)
			})
			if err != nil {
				return err
			}
			continue
		}
		if err := hostutil.WriteFileAtomic(filepath.Join(runDir, filepath.Base(out)), node.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func withinGuestDir(p, dir string) bool {
	if dir == "/" {
		return true
	}
	return p == dir || (len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/')
}

// runPostRunHook executes the workload's post-run hook against the run
// output directory.
func (m *Marshal) runPostRunHook(w *spec.Workload, runDir string) error {
	hook, dir := EffectivePostRunHook(w)
	if hook == "" {
		return nil
	}
	m.logf("running post-run-hook %s", hook)
	abs, err := filepath.Abs(runDir)
	if err != nil {
		return err
	}
	if _, err := hostutil.RunHostScript(hook, dir, abs); err != nil {
		return fmt.Errorf("core: post-run-hook: %w", err)
	}
	return nil
}
