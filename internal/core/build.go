package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"firemarshal/internal/boards"
	"firemarshal/internal/dag"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/kconfig"
	"firemarshal/internal/kernel"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/spec"
)

// BuildOpts controls a build.
type BuildOpts struct {
	// NoDisk additionally produces the initramfs-embedded boot binary
	// (`marshal build --no-disk`, Fig. 3).
	NoDisk bool
	// Jobs bounds how many build tasks run concurrently (the dag engine's
	// worker count). <=0 means NumCPU. Per-job build targets are claimed
	// concurrently; shared parents still build exactly once (the engine
	// schedules each task after its dependencies and never re-runs one).
	Jobs int
}

// BuildResult reports the artifacts of one target.
type BuildResult struct {
	Target    string
	Bin       string // boot binary path ("" for image-only targets)
	Img       string // disk image path ("" for bare-metal targets)
	NoDiskBin string // set when BuildOpts.NoDisk
}

// Build constructs the boot binary and disk image for a workload and all of
// its jobs (§III-B), using the dependency tracker to skip up-to-date steps.
func (m *Marshal) Build(nameOrPath string, opts BuildOpts) ([]BuildResult, error) {
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return nil, err
	}
	return m.BuildWorkload(w, opts)
}

// BuildWorkload builds an already-resolved workload. Commands that both
// build and launch (Launch, Test) load the spec once and pass the same
// resolved workload to every phase, so a workload file edited mid-command
// cannot produce a run that mismatches its artifacts.
func (m *Marshal) BuildWorkload(w *spec.Workload, opts BuildOpts) ([]BuildResult, error) {
	eng, err := dag.NewEngine(m.stateDB())
	if err != nil {
		return nil, err
	}
	cache, err := m.Cache()
	if err != nil {
		return nil, err
	}
	eng.SetCache(cache)
	// Builds report dag_* metrics and, inside a launch, nest their
	// per-node spans under the run's "build" span.
	buildSpan := m.runSpan.Child("build")
	defer buildSpan.End()
	eng.SetObs(m.Obs, buildSpan)
	b := &builder{m: m, eng: eng, opts: opts, registered: map[string]bool{}, artifacts: map[string]*chainArtifacts{}}

	var results []BuildResult
	var finalTasks []string
	for _, tgt := range Targets(w) {
		arts, err := b.register(tgt.Workload, tgt.Name)
		if err != nil {
			return nil, err
		}
		res := BuildResult{Target: tgt.Name}
		if arts.binTask != "" {
			res.Bin = m.BinPath(tgt.Name)
			finalTasks = append(finalTasks, arts.binTask)
		}
		if arts.imgTask != "" {
			res.Img = m.ImgPath(tgt.Name)
			finalTasks = append(finalTasks, arts.imgTask)
		}
		if opts.NoDisk && arts.noDiskTask != "" {
			res.NoDiskBin = m.NoDiskBinPath(tgt.Name)
			finalTasks = append(finalTasks, arts.noDiskTask)
		}
		results = append(results, res)
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if err := eng.RunMany(finalTasks, workers); err != nil {
		return nil, err
	}
	m.LastBuildStats = BuildStats{
		Executed: sortedUnique(eng.Executed),
		Skipped:  sortedUnique(eng.Skipped),
		Restored: sortedUnique(eng.Restored),
		Cache:    cache.Stats(),
	}
	m.logf("built %s (%d tasks run, %d restored from cache, %d up to date)",
		w.Name, len(m.LastBuildStats.Executed), len(m.LastBuildStats.Restored), len(m.LastBuildStats.Skipped))
	return results, nil
}

// chainArtifacts records the task names registered for one workload.
type chainArtifacts struct {
	hostTask   string
	binTask    string // "" when the workload has no boot binary
	imgTask    string // "" when the workload has no disk image
	noDiskTask string
	artifact   string // artifact (target) name
}

type builder struct {
	m          *Marshal
	eng        *dag.Engine
	opts       BuildOpts
	registered map[string]bool
	artifacts  map[string]*chainArtifacts
}

// register sets up build tasks for w (and, recursively, its parents) under
// the given artifact name. §III-B.1 step 2: "The build process ... is
// performed recursively to produce filesystem images for all parents."
func (b *builder) register(w *spec.Workload, artifact string) (*chainArtifacts, error) {
	if arts, ok := b.artifacts[artifact]; ok {
		return arts, nil
	}
	var parentArts *chainArtifacts
	if p := w.Parent(); p != nil {
		pa, err := b.register(p, p.Name)
		if err != nil {
			return nil, err
		}
		parentArts = pa
	}
	arts := &chainArtifacts{artifact: artifact}
	b.artifacts[artifact] = arts

	specHash := w.Hash()

	// --- host-init (§III-B.1 step 3) ---
	var hostDeps []string
	if w.HostInit != "" {
		arts.hostTask = "host:" + artifact
		script := w.HostPath(firstField(w.HostInit))
		task := &dag.Task{
			Name:      arts.hostTask,
			FileDeps:  []string{script},
			ValueDeps: map[string]string{"spec": specHash, "hostinit": w.HostInit},
			Action: func() error {
				b.m.logf("running host-init for %s", artifact)
				_, err := hostutil.RunHostScript(w.HostInit, w.Dir)
				return err
			},
		}
		if err := b.eng.Register(task); err != nil {
			return nil, err
		}
		hostDeps = append(hostDeps, arts.hostTask)
	}

	// --- boot binary (§III-B.1 step 4) ---
	if err := b.registerBin(w, artifact, arts, parentArts, specHash, hostDeps); err != nil {
		return nil, err
	}

	// --- disk image (§III-B.1 step 5) ---
	if err := b.registerImg(w, artifact, arts, parentArts, specHash, hostDeps); err != nil {
		return nil, err
	}

	// --- initramfs-embedded build (§III-B.1 step 6) ---
	if b.opts.NoDisk && arts.imgTask != "" && arts.binTask != "" {
		arts.noDiskTask = "nodisk:" + artifact
		task := &dag.Task{
			Name:      arts.noDiskTask,
			TaskDeps:  []string{arts.imgTask, arts.binTask},
			FileDeps:  []string{b.m.ImgPath(artifact), b.m.BinPath(artifact)},
			ValueDeps: map[string]string{"spec": specHash},
			Targets:   []string{b.m.NoDiskBinPath(artifact)},
			Action:    func() error { return b.buildNoDisk(w, artifact) },
		}
		if err := b.eng.Register(task); err != nil {
			return nil, err
		}
	}
	return arts, nil
}

func (b *builder) registerBin(w *spec.Workload, artifact string, arts, parentArts *chainArtifacts, specHash string, hostDeps []string) error {
	distro := w.EffectiveDistro()
	hardBin := w.Bin != ""
	parentHasBin := parentArts != nil && parentArts.binTask != ""
	if distro == "bare" && !hardBin {
		if !parentHasBin {
			// A pure bare-metal base has no binary of its own.
			return nil
		}
	}

	arts.binTask = "bin:" + artifact
	task := &dag.Task{
		Name:      arts.binTask,
		TaskDeps:  append([]string(nil), hostDeps...),
		ValueDeps: map[string]string{"spec": specHash},
		Targets:   []string{b.m.BinPath(artifact)},
	}
	switch {
	case hardBin:
		// Hard-coded boot binary: the remaining steps are skipped.
		binPath := w.HostPath(w.Bin)
		// The bin file may be generated by host-init, so it is hashed as a
		// dependency only if host-init is absent.
		if w.HostInit == "" {
			task.FileDeps = append(task.FileDeps, binPath)
		}
		task.Action = func() error {
			data, err := os.ReadFile(binPath)
			if err != nil {
				return fmt.Errorf("core: hard-coded bin for %s: %w", artifact, err)
			}
			if _, err := firmware.Decode(data); err != nil {
				return fmt.Errorf("core: %s: %w", binPath, err)
			}
			return hostutil.WriteFileAtomic(b.m.BinPath(artifact), data, 0o644)
		}
	case !binInputsDiffer(w) && parentHasBin:
		// "If the child workload would not generate a different binary
		// than its parent, FireMarshal simply makes a copy of the parent's
		// binary and skips this step." (§III-B.1 step 4)
		parentBin := b.m.BinPath(parentArts.artifact)
		task.TaskDeps = append(task.TaskDeps, parentArts.binTask)
		task.FileDeps = append(task.FileDeps, parentBin)
		task.Action = func() error {
			b.m.logf("copying parent boot binary for %s", artifact)
			return hostutil.CopyFile(parentBin, b.m.BinPath(artifact))
		}
	default:
		// Full kernel + firmware build.
		for _, frag := range w.ConfigFragments() {
			task.FileDeps = append(task.FileDeps, frag)
		}
		for _, dir := range w.Modules() {
			task.FileDeps = append(task.FileDeps, dir)
		}
		if src := linuxSourcePath(w); src != "" {
			task.FileDeps = append(task.FileDeps, src)
		}
		task.Action = func() error {
			b.m.logf("building boot binary for %s", artifact)
			bin, err := b.buildBootBinary(w, nil)
			if err != nil {
				return err
			}
			data, err := bin.Encode()
			if err != nil {
				return err
			}
			return hostutil.WriteFileAtomic(b.m.BinPath(artifact), data, 0o644)
		}
	}
	return b.eng.Register(task)
}

// binInputsDiffer reports whether w changes any boot-binary input relative
// to its parent.
func binInputsDiffer(w *spec.Workload) bool {
	return w.Linux != nil || w.Firmware != nil
}

// linuxSourcePath resolves the effective custom kernel source directory.
func linuxSourcePath(w *spec.Workload) string {
	for c := w; c != nil; c = c.Parent() {
		if c.Linux != nil && c.Linux.Source != "" {
			return c.HostPath(c.Linux.Source)
		}
	}
	return ""
}

// buildBootBinary performs kernel configuration, module build, initramfs
// generation, kernel compilation, and firmware linking (§III-B.1 steps
// 4a-4e). extraInitramfs embeds a rootfs for --no-disk builds.
func (b *builder) buildBootBinary(w *spec.Workload, extraInitramfs *fsimg.FS) (*firmware.BootBinary, error) {
	var frags []*kconfig.Config
	for _, fragPath := range w.ConfigFragments() {
		data, err := os.ReadFile(fragPath)
		if err != nil {
			return nil, fmt.Errorf("core: reading config fragment: %w", err)
		}
		frag, err := kconfig.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", fragPath, err)
		}
		frags = append(frags, frag)
	}
	kimg, err := kernel.Build(kernel.BuildOpts{
		SourceDir:      linuxSourcePath(w),
		Fragments:      frags,
		Modules:        w.Modules(),
		ExtraInitramfs: extraInitramfs,
	})
	if err != nil {
		return nil, err
	}
	var fwArgs []string
	for _, c := range w.Chain() {
		if c.Firmware != nil {
			fwArgs = append(fwArgs, c.Firmware.BuildArgs...)
		}
	}
	return firmware.Build(w.EffectiveFirmware(), fwArgs, kimg)
}

func (b *builder) registerImg(w *spec.Workload, artifact string, arts, parentArts *chainArtifacts, specHash string, hostDeps []string) error {
	distro := w.EffectiveDistro()
	if distro == "bare" && w.Img == "" {
		return nil // bare-metal workloads have no disk image
	}
	arts.imgTask = "img:" + artifact
	task := &dag.Task{
		Name:      arts.imgTask,
		TaskDeps:  append([]string(nil), hostDeps...),
		ValueDeps: map[string]string{"spec": specHash},
		Targets:   []string{b.m.ImgPath(artifact)},
	}
	if w.Overlay != "" {
		task.FileDeps = append(task.FileDeps, w.HostPath(w.Overlay))
	}
	for _, fp := range w.Files {
		task.FileDeps = append(task.FileDeps, w.HostPath(fp.Src))
	}
	if w.Run != "" {
		task.FileDeps = append(task.FileDeps, w.HostPath(w.Run))
	}
	if w.GuestInit != "" {
		task.FileDeps = append(task.FileDeps, w.HostPath(w.GuestInit))
	}
	if w.Img != "" && w.HostInit == "" {
		task.FileDeps = append(task.FileDeps, w.HostPath(w.Img))
	}
	if parentArts != nil && parentArts.imgTask != "" {
		task.TaskDeps = append(task.TaskDeps, parentArts.imgTask)
		task.FileDeps = append(task.FileDeps, b.m.ImgPath(parentArts.artifact))
	}
	// guest-init boots the image with this workload's kernel.
	if w.GuestInit != "" && arts.binTask != "" {
		task.TaskDeps = append(task.TaskDeps, arts.binTask)
	}
	task.Action = func() error {
		b.m.logf("building image for %s (%s)", artifact, describeChain(w))
		fs, err := b.buildImage(w, artifact, parentArts)
		if err != nil {
			return err
		}
		return hostutil.WriteFileAtomic(b.m.ImgPath(artifact), fs.Encode(), 0o644)
	}
	return b.eng.Register(task)
}

// buildImage produces the workload's root filesystem (§III-B.1 step 5).
func (b *builder) buildImage(w *spec.Workload, artifact string, parentArts *chainArtifacts) (*fsimg.FS, error) {
	var fs *fsimg.FS
	switch {
	case w.Img != "":
		// Hard-coded disk image: remaining steps are skipped.
		data, err := os.ReadFile(w.HostPath(w.Img))
		if err != nil {
			return nil, fmt.Errorf("core: hard-coded img: %w", err)
		}
		return fsimg.Decode(data)
	case parentArts != nil && parentArts.imgTask != "":
		// Step 5a: copy the parent's image.
		data, err := os.ReadFile(b.m.ImgPath(parentArts.artifact))
		if err != nil {
			return nil, err
		}
		parentFS, err := fsimg.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("core: parent image: %w", err)
		}
		fs = parentFS.Clone()
	default:
		// Root of the chain: a builtin distribution base.
		base, err := boards.BaseImage(w.EffectiveDistro())
		if err != nil {
			return nil, fmt.Errorf("core: workload %q: %w", w.Name, err)
		}
		fs = base
	}

	if sizeStr := w.EffectiveRootfsSize(); sizeStr != "" {
		size, err := spec.ParseRootfsSize(sizeStr)
		if err != nil {
			return nil, err
		}
		fs.SizeLimit = size
	}

	// Step 5a (continued): apply overlay and files.
	if w.Overlay != "" {
		if err := applyHostDir(fs, w.HostPath(w.Overlay), "/"); err != nil {
			return nil, fmt.Errorf("core: overlay: %w", err)
		}
	}
	for _, fp := range w.Files {
		if err := applyHostPath(fs, w.HostPath(fp.Src), fp.Dst); err != nil {
			return nil, fmt.Errorf("core: files: %w", err)
		}
	}

	// Step 5c: configure the boot command.
	if err := bakeRunScript(fs, w); err != nil {
		return nil, err
	}

	// Step 5b: guest-init — boot the half-built workload in QEMU and run
	// the script exactly once.
	if w.GuestInit != "" {
		script, err := os.ReadFile(w.HostPath(w.GuestInit))
		if err != nil {
			return nil, fmt.Errorf("core: guest-init: %w", err)
		}
		if err := b.runGuestInit(w, artifact, fs, string(script)); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// bakeRunScript installs the run/command script into the image's init
// system. Without either option the parent's baked script (if any) stays.
func bakeRunScript(fs *fsimg.FS, w *spec.Workload) error {
	var content string
	switch {
	case w.Command != "":
		content = w.Command + "\n"
	case w.Run != "":
		data, err := os.ReadFile(w.HostPath(w.Run))
		if err != nil {
			return fmt.Errorf("core: run script: %w", err)
		}
		content = string(data)
	default:
		return nil
	}
	if err := fs.WriteFile(guestos.RunScriptPath, []byte(content), 0o755); err != nil {
		return err
	}
	// On the Fedora base the hook is a systemd unit; on Buildroot it is an
	// init script. Both point at the same baked script.
	if w.EffectiveDistro() == "fedora" {
		unit := "[Unit]\nDescription=FireMarshal workload\n[Service]\nExecStart=" + guestos.RunScriptPath + "\n"
		return fs.WriteFile("/etc/systemd/system/marshal.service", []byte(unit), 0o644)
	}
	return nil
}

// runGuestInit boots the image in functional simulation with the guest-init
// script as the run target, persisting the resulting filesystem.
func (b *builder) runGuestInit(w *spec.Workload, artifact string, fs *fsimg.FS, script string) error {
	b.m.logf("running guest-init for %s in QEMU", w.Name)
	binData, err := os.ReadFile(b.m.BinPath(artifact))
	if err != nil {
		return fmt.Errorf("core: guest-init needs the boot binary: %w", err)
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return err
	}
	platform := funcsim.New(funcsim.Config{Variant: "qemu"})
	var console bytes.Buffer
	res, err := guestos.Boot(guestos.BootOpts{
		Boot:        boot,
		Disk:        fs,
		Platform:    platform,
		Console:     &console,
		PkgRepo:     guestos.DefaultRepo(),
		OverrideRun: script,
	})
	if err != nil {
		return fmt.Errorf("core: guest-init boot: %w (console: %s)", err, console.String())
	}
	if res.ExitCode != 0 {
		return fmt.Errorf("core: guest-init exited with %d (console: %s)", res.ExitCode, console.String())
	}
	return nil
}

// buildNoDisk rebuilds the kernel with the finished disk image embedded as
// its initramfs payload (§III-B.1 step 6).
func (b *builder) buildNoDisk(w *spec.Workload, artifact string) error {
	b.m.logf("building no-disk boot binary for %s", artifact)
	imgData, err := os.ReadFile(b.m.ImgPath(artifact))
	if err != nil {
		return err
	}
	rootfs, err := fsimg.Decode(imgData)
	if err != nil {
		return err
	}
	bin, err := b.buildBootBinary(w, rootfs)
	if err != nil {
		return err
	}
	data, err := bin.Encode()
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(b.m.NoDiskBinPath(artifact), data, 0o644)
}

// applyHostDir copies a host directory tree into the image under dst,
// preserving execute bits.
func applyHostDir(fs *fsimg.FS, hostDir, dst string) error {
	info, err := os.Stat(hostDir)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return applyHostPath(fs, hostDir, filepath.Join(dst, filepath.Base(hostDir)))
	}
	return filepath.Walk(hostDir, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		rel, err := filepath.Rel(hostDir, path)
		if err != nil {
			return err
		}
		guestPath := filepath.ToSlash(filepath.Join(dst, rel))
		if fi.IsDir() {
			return fs.MkdirAll(guestPath, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		mode := uint32(0o644)
		if fi.Mode()&0o111 != 0 {
			mode = 0o755
		}
		return fs.WriteFile(guestPath, data, mode)
	})
}

// applyHostPath copies one host file (or directory) to a guest path.
func applyHostPath(fs *fsimg.FS, hostPath, dst string) error {
	info, err := os.Stat(hostPath)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return applyHostDir(fs, hostPath, dst)
	}
	data, err := os.ReadFile(hostPath)
	if err != nil {
		return err
	}
	mode := uint32(0o644)
	if info.Mode()&0o111 != 0 {
		mode = 0o755
	}
	return fs.WriteFile(dst, data, mode)
}

func firstField(s string) string {
	fields := []rune{}
	for _, r := range s {
		if r == ' ' || r == '\t' {
			break
		}
		fields = append(fields, r)
	}
	return string(fields)
}
