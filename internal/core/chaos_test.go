package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestChaosRunSurvivesFaultSchedule is the in-tree version of the chaos
// gate: a 3-worker loopback fleet under the default fault schedule must
// produce bit-identical results to a clean fleet, lose no jobs, and
// exercise the self-heal path (every worker store starts with planted
// corrupt artifact blobs).
func TestChaosRunSurvivesFaultSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run spins up two fleets")
	}
	e := newEnv(t)
	e.write(t, "chaoswl.json", `{
  "name": "chaoswl", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo chaos-a"},
    {"name": "b", "command": "echo chaos-b"}
  ]}`)

	var out bytes.Buffer
	report, err := e.m.Chaos(context.Background(), "chaoswl", ChaosOpts{
		Seed:         7,
		Workers:      3,
		HedgeAfter:   100 * time.Millisecond,
		SlowJobDelay: 700 * time.Millisecond,
		Out:          &out,
	})
	if err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	if !report.Identical() {
		t.Fatalf("mismatches: %v", report.Mismatches)
	}
	if len(report.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(report.Jobs))
	}
	if report.Healed == 0 {
		t.Errorf("cas_blobs_healed_total = 0; planted corrupt blobs should have self-healed\n%s", out.String())
	}
	if report.HTTPFaults == 0 {
		t.Errorf("chaos_http_faults_total = 0; the schedule injected nothing")
	}
	if !strings.Contains(out.String(), "chaos: PASS") {
		t.Errorf("report missing PASS line:\n%s", out.String())
	}
}

// TestChaosScheduleReplay: the same seed prints the same fingerprint and
// report lines run-to-run — the replayability half of the chaos gate.
func TestChaosFingerprintStable(t *testing.T) {
	e := newEnv(t)
	e.write(t, "fp.json", `{"name": "fp", "base": "br-base", "command": "true"}`)
	// Fingerprints come straight from the plan; two Chaos invocations with
	// one seed must agree, and a different seed must differ.
	var a, b bytes.Buffer
	ra, err := e.m.Chaos(context.Background(), "fp", ChaosOpts{Seed: 42, Workers: 2, SlowJobDelay: 50 * time.Millisecond, Out: &a})
	if err != nil {
		t.Fatalf("seed 42 run 1: %v\n%s", err, a.String())
	}
	rb, err := e.m.Chaos(context.Background(), "fp", ChaosOpts{Seed: 42, Workers: 2, SlowJobDelay: 50 * time.Millisecond, Out: &b})
	if err != nil {
		t.Fatalf("seed 42 run 2: %v\n%s", err, b.String())
	}
	if ra.Fingerprint != rb.Fingerprint {
		t.Errorf("same seed, fingerprints %s != %s", ra.Fingerprint, rb.Fingerprint)
	}
	rc, err := e.m.Chaos(context.Background(), "fp", ChaosOpts{Seed: 43, Workers: 2, SlowJobDelay: 50 * time.Millisecond, Out: &b})
	if err != nil {
		t.Fatalf("seed 43: %v\n%s", err, b.String())
	}
	if rc.Fingerprint == ra.Fingerprint {
		t.Errorf("different seeds share fingerprint %s", ra.Fingerprint)
	}
}
