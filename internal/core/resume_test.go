package core

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"firemarshal/internal/asm"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/isa"
	"firemarshal/internal/launcher"
)

// writeLoopOverlay installs a guest binary that spins for ~2*count
// instructions and exits 0 — long enough that the fault injector can cancel
// the run while the job is mid-flight with checkpoints on disk.
func writeLoopOverlay(t *testing.T, e *testEnv, count int) {
	t.Helper()
	exe, err := asm.Assemble(`
_start:
    li s0, `+itoa(count)+`
loop:
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := e.wlDir + "/overlay-loop/bench"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/loop", isa.EncodeExecutable(exe), 0o755); err != nil {
		t.Fatal(err)
	}
}

// cancelWhenCheckpointed fires cancel as soon as a checkpoint pointer for
// job appears — guaranteeing the "crash" lands while that job is in flight
// with at least one snapshot persisted. done stops the watcher.
func cancelWhenCheckpointed(ptrPath string, cancel context.CancelFunc, done <-chan struct{}) {
	for {
		if _, err := os.Stat(ptrPath); err == nil {
			cancel()
			return
		}
		select {
		case <-done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// TestLaunchCrashResumeBitIdentical is the launch-level half of the
// tentpole's determinism gate: a run killed while one job is done and
// another is mid-flight (with live checkpoints), then re-run with -resume,
// reports per-job cycle counts bit-identical to an uninterrupted run. The
// carried job must not re-simulate, and the summary must account attempts
// across the interruption.
func TestLaunchCrashResumeBitIdentical(t *testing.T) {
	e := newEnv(t)
	writeLoopOverlay(t, e, 15000000)
	e.write(t, "crashy.json", `{
  "name": "crashy", "base": "br-base", "overlay": "overlay-loop",
  "jobs": [
    {"name": "quick", "command": "echo quick-done"},
    {"name": "slow", "command": "/bench/loop"}
  ]}`)

	// Uninterrupted reference run (no checkpointing).
	straight, err := e.m.Launch("crashy", LaunchOpts{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{}
	for _, r := range straight {
		want[r.Target] = r.Cycles
	}
	if len(want) != 2 {
		t.Fatalf("reference run results = %d", len(want))
	}

	// Crashed run: sequential workers guarantee quick completes first; the
	// watcher kills the run once slow has a checkpoint on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go cancelWhenCheckpointed(checkpoint.PointerPath(e.m.CkptDir(), "crashy-slow"), cancel, done)
	_, err = e.m.Launch("crashy", LaunchOpts{Jobs: 1, Context: ctx, CkptEvery: 100000})
	close(done)
	if err == nil {
		t.Fatal("interrupted launch reported success (job too short to be caught mid-flight?)")
	}
	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 2 || recs[0].Status != launcher.StatusOK || recs[1].Status != launcher.StatusCancelled {
		t.Fatalf("post-crash manifest = %+v, want quick ok + slow cancelled", recs)
	}
	if _, err := checkpoint.LoadPointer(checkpoint.PointerPath(e.m.CkptDir(), "crashy-slow")); err != nil {
		t.Fatalf("cancelled job's checkpoint pointer missing: %v", err)
	}

	// Resume: quick carries, slow restores mid-flight and finishes.
	var log bytes.Buffer
	e.m.Log = &log
	results, err := e.m.Launch("crashy", LaunchOpts{Jobs: 1, Resume: true, CkptEvery: 100000})
	if err != nil {
		t.Fatalf("resume: %v (log:\n%s)", err, log.String())
	}
	if len(results) != 2 {
		t.Fatalf("resume results = %d", len(results))
	}
	for _, r := range results {
		if r.Cycles != want[r.Target] {
			t.Errorf("job %s cycles = %d after resume, want %d (uninterrupted)", r.Target, r.Cycles, want[r.Target])
		}
		if r.ExitCode != 0 {
			t.Errorf("job %s exit = %d", r.Target, r.ExitCode)
		}
	}
	if !strings.Contains(log.String(), "already ok") || !strings.Contains(log.String(), "restoring from checkpoint") {
		t.Errorf("resume log missing carry/restore markers:\n%s", log.String())
	}

	// Attempts account across the interruption: slow ran once before the
	// crash and once after, rendered "1+1" in the summary table.
	sum := e.m.LastLaunch
	if sum == nil {
		t.Fatal("no launch summary")
	}
	for _, j := range sum.Jobs {
		if j.Name == "crashy-slow" {
			if j.Prior != 1 || !j.Resumed || j.Status != launcher.StatusOK {
				t.Errorf("slow summary = %+v, want prior=1 resumed ok", j)
			}
		}
	}
	if table := launcher.FormatTable(sum); !strings.Contains(table, "1+1") {
		t.Errorf("summary table lacks prior+new attempts:\n%s", table)
	}

	recs = readManifest(t, e.m.LastManifest)
	for _, r := range recs {
		if r.Status != launcher.StatusOK || !r.Resumed {
			t.Errorf("post-resume manifest record = %+v, want ok+resumed", r)
		}
		if r.Cycles != want[r.Job] {
			t.Errorf("manifest %s cycles = %d, want %d", r.Job, r.Cycles, want[r.Job])
		}
	}
	if r := recs[1]; r.Attempts != 2 {
		t.Errorf("slow manifest attempts = %d, want 2 (1 prior + 1 new)", r.Attempts)
	}

	// Terminal success cleared the checkpoint state and the journal.
	if _, err := os.Stat(e.m.JournalPath("crashy")); !os.IsNotExist(err) {
		t.Errorf("journal survived compaction: %v", err)
	}
	ptrs, err := checkpoint.Pointers(e.m.CkptDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 0 {
		t.Errorf("pointers after successful resume: %+v", ptrs)
	}
}

// TestResumeFailsJobStillNonZero: a resume whose remaining job fails must
// exit non-zero even though the carried jobs are all ok.
func TestResumeFailsJobStillNonZero(t *testing.T) {
	e := newEnv(t)
	// A guest binary that executes an all-zero word traps the machine,
	// which surfaces as a permanent job failure.
	exe, err := asm.Assemble("_start:\n    .word 0\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := e.wlDir + "/overlay-bad/bad"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/trap", isa.EncodeExecutable(exe), 0o755); err != nil {
		t.Fatal(err)
	}
	e.write(t, "mixed.json", `{
  "name": "mixed", "base": "br-base", "overlay": "overlay-bad",
  "jobs": [
    {"name": "good", "command": "echo fine"},
    {"name": "bad", "command": "/bad/trap"}
  ]}`)

	// First run: good finishes, bad traps. Re-running with -resume carries
	// good and re-attempts bad, which fails again — the launch must still
	// report failure.
	if _, err := e.m.Launch("mixed", LaunchOpts{Jobs: 1}); err == nil {
		t.Fatal("first launch should fail (bad traps)")
	}
	_, err = e.m.Launch("mixed", LaunchOpts{Jobs: 1, Resume: true})
	if err == nil {
		t.Fatal("resume with a failing job must return an error")
	}
	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 2 {
		t.Fatalf("manifest records = %d", len(recs))
	}
	if recs[0].Job != "mixed-good" || recs[0].Status != launcher.StatusOK || !recs[0].Resumed {
		t.Errorf("good record = %+v", recs[0])
	}
	if recs[1].Job != "mixed-bad" || recs[1].Status != launcher.StatusFailed {
		t.Errorf("bad record = %+v", recs[1])
	}
}
