package core

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"firemarshal/internal/cas"
	casremote "firemarshal/internal/cas/remote"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	lremote "firemarshal/internal/launcher/remote"
	"firemarshal/internal/obs"
	"firemarshal/internal/workgen"
)

// startSharedCache stands up the HTTP cache server a worker fleet shares
// and points the Marshal at it (before its lazy cache opens).
func startSharedCache(t testing.TB, m *Marshal) *httptest.Server {
	t.Helper()
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(casremote.NewServer(store))
	t.Cleanup(srv.Close)
	m.RemoteCache = srv.URL
	return srv
}

// startWorkerFleet spins up n in-process `marshal worker serve` daemons,
// each over its own local store and checkpoint dir — separate machines in
// all but address space — sharing the cache server at cacheURL. The
// returned slices are index-aligned so tests can kill a specific worker
// mid-run.
func startWorkerFleet(t testing.TB, cacheURL string, n int) (addrs []string, workers []*lremote.Worker, servers []*httptest.Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		store, err := cas.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		w := lremote.NewWorker(lremote.WorkerConfig{
			Runner: &lremote.ArtifactRunner{
				Store:   store,
				Remote:  casremote.NewClient(cacheURL, 0),
				CkptDir: t.TempDir(),
				Obs:     obs.NewRegistry(),
			},
			Slots: 1,
			Obs:   obs.NewRegistry(),
		})
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		t.Cleanup(w.Close)
		workers = append(workers, w)
		servers = append(servers, srv)
		addrs = append(addrs, srv.Listener.Addr().String())
	}
	return addrs, workers, servers
}

// readRunArtifacts captures each result's cycle count and uartlog bytes
// before a later launch overwrites the run directories.
func readRunArtifacts(t *testing.T, results []*RunResult) (cycles map[string]uint64, logs map[string][]byte) {
	t.Helper()
	cycles, logs = map[string]uint64{}, map[string][]byte{}
	for _, r := range results {
		data, err := os.ReadFile(r.Uartlog)
		if err != nil {
			t.Fatalf("uartlog for %s: %v", r.Target, err)
		}
		cycles[r.Target], logs[r.Target] = r.Cycles, data
	}
	return cycles, logs
}

// TestDistributedLaunchMatchesLocal: the same workload launched locally
// and across a 2-worker fleet produces identical cycle counts, identical
// console bytes, and an identical-shaped manifest — distribution is an
// execution detail, not a semantic one.
func TestDistributedLaunchMatchesLocal(t *testing.T) {
	e := newEnv(t)
	// A private registry isolates the remote_jobs_done_total assertion
	// from other distributed tests in the process (shuffle-proof).
	e.m.Obs = obs.NewRegistry()
	srv := startSharedCache(t, e.m)
	e.write(t, "dist.json", `{
  "name": "dist", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo from-a"},
    {"name": "b", "command": "echo from-b"}
  ]}`)

	ref, err := e.m.Launch("dist", LaunchOpts{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantCycles, wantLogs := readRunArtifacts(t, ref)

	addrs, _, _ := startWorkerFleet(t, srv.URL, 2)
	res, err := e.m.Launch("dist", LaunchOpts{Workers: addrs, WorkerPoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("fleet results = %d", len(res))
	}
	for _, r := range res {
		if r.Cycles != wantCycles[r.Target] {
			t.Errorf("job %s cycles = %d on fleet, want %d (local)", r.Target, r.Cycles, wantCycles[r.Target])
		}
		data, err := os.ReadFile(r.Uartlog)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(wantLogs[r.Target]) {
			t.Errorf("job %s uartlog differs on fleet:\n%s\nwant:\n%s", r.Target, data, wantLogs[r.Target])
		}
	}
	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 2 {
		t.Fatalf("manifest records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Status != launcher.StatusOK || r.Attempts != 1 {
			t.Errorf("manifest record = %+v, want ok in one attempt", r)
		}
	}
	if got := e.m.Obs.Counter("remote_jobs_done_total").Value(); got != 2 {
		t.Errorf("remote_jobs_done_total = %d", got)
	}
}

// TestDistributedCrashResumeBitIdentical is the distributed half of the
// determinism gate: a worker killed mid-job (checkpoints live) forfeits
// its lease; the coordinator re-leases the job to the surviving worker,
// which restores from the handed-off checkpoint and finishes — in the SAME
// `marshal launch` invocation — with cycle counts and console bytes
// bit-identical to an uninterrupted local run.
func TestDistributedCrashResumeBitIdentical(t *testing.T) {
	e := newEnv(t)
	srv := startSharedCache(t, e.m)
	writeLoopOverlay(t, e, 15000000)
	e.write(t, "crashy.json", `{
  "name": "crashy", "base": "br-base", "overlay": "overlay-loop",
  "jobs": [
    {"name": "quick", "command": "echo quick-done"},
    {"name": "slow", "command": "/bench/loop"}
  ]}`)

	// Uninterrupted local reference run (no checkpointing, no fleet).
	ref, err := e.m.Launch("crashy", LaunchOpts{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantCycles, wantLogs := readRunArtifacts(t, ref)
	if len(wantCycles) != 2 {
		t.Fatalf("reference run results = %d", len(wantCycles))
	}

	// Fleet run with a fault injector: least-loaded assignment puts quick
	// on worker 0 and slow on worker 1; the watcher kills worker 1 — HTTP
	// listener and simulation both — as soon as the coordinator has
	// persisted a checkpoint pointer for slow.
	addrs, workers, servers := startWorkerFleet(t, srv.URL, 2)
	done := make(chan struct{})
	killed := make(chan struct{})
	ptrPath := checkpoint.PointerPath(e.m.CkptDir(), "crashy-slow")
	go func() {
		defer close(killed)
		for {
			if _, err := os.Stat(ptrPath); err == nil {
				servers[1].CloseClientConnections()
				servers[1].Close()
				workers[1].Close()
				return
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	res, err := e.m.Launch("crashy", LaunchOpts{
		Workers:        addrs,
		CkptEvery:      100000,
		WorkerLeaseTTL: 300 * time.Millisecond,
		WorkerPoll:     2 * time.Millisecond,
	})
	close(done)
	<-killed
	if err != nil {
		t.Fatalf("fleet launch with worker death: %v", err)
	}

	// The handoff really happened: the coordinator declared worker 1 dead
	// and the job took a second attempt on worker 0.
	if got := e.m.Obs.Counter("remote_lease_expiries_total").Value(); got < 1 {
		t.Fatalf("remote_lease_expiries_total = %d, want >= 1 (did the kill land mid-job?)", got)
	}

	if len(res) != 2 {
		t.Fatalf("fleet results = %d", len(res))
	}
	for _, r := range res {
		if r.Cycles != wantCycles[r.Target] {
			t.Errorf("job %s cycles = %d after handoff, want %d (uninterrupted local)", r.Target, r.Cycles, wantCycles[r.Target])
		}
		data, err := os.ReadFile(r.Uartlog)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(wantLogs[r.Target]) {
			t.Errorf("job %s console differs after handoff:\n%q\nwant:\n%q", r.Target, data, wantLogs[r.Target])
		}
		if r.ExitCode != 0 {
			t.Errorf("job %s exit = %d", r.Target, r.ExitCode)
		}
	}

	// The manifest is the coordinator's: slow took two attempts (one per
	// worker) and is marked resumed; quick is untouched.
	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 2 {
		t.Fatalf("manifest records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Status != launcher.StatusOK {
			t.Errorf("manifest %s status = %s", r.Job, r.Status)
		}
		if r.Cycles != wantCycles[r.Job] {
			t.Errorf("manifest %s cycles = %d, want %d", r.Job, r.Cycles, wantCycles[r.Job])
		}
	}
	var slow *launcher.Record
	for i := range recs {
		if recs[i].Job == "crashy-slow" {
			slow = &recs[i]
		}
	}
	if slow == nil || slow.Attempts != 2 || !slow.Resumed {
		t.Errorf("slow manifest record = %+v, want 2 attempts (one per worker) + resumed", slow)
	}

	// Terminal success cleared the coordinator's checkpoint pointers.
	ptrs, err := checkpoint.Pointers(e.m.CkptDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 0 {
		t.Errorf("pointers after successful fleet run: %+v", ptrs)
	}
}

// TestDistributedJobsOverlap proves the fleet actually runs jobs
// concurrently — the property behind the speedup — in a way that holds on
// any host: while a 2-job launch is in flight, both workers must report a
// running job at the same instant. (Wall-clock speedup itself needs real
// cores; TestDistributedSpeedup gates on them.)
func TestDistributedJobsOverlap(t *testing.T) {
	e := newEnv(t)
	srv := startSharedCache(t, e.m)
	writeLoopOverlay(t, e, 15000000)
	e.write(t, "par2.json", `{
  "name": "par2", "base": "br-base", "overlay": "overlay-loop",
  "jobs": [
    {"name": "j0", "command": "/bench/loop"},
    {"name": "j1", "command": "/bench/loop"}
  ]}`)

	addrs, _, _ := startWorkerFleet(t, srv.URL, 2)
	launched := make(chan error, 1)
	go func() {
		_, err := e.m.Launch("par2", LaunchOpts{Workers: addrs, WorkerPoll: 2 * time.Millisecond})
		launched <- err
	}()

	running := func(addr string) bool {
		st, err := lremote.NewWorkerClient(addr, 0).Status(context.Background())
		if err != nil {
			return false
		}
		for _, s := range st.Jobs {
			if s == lremote.JobRunning {
				return true
			}
		}
		return false
	}
	overlapped := false
	deadline := time.Now().Add(10 * time.Second)
	for !overlapped && time.Now().Before(deadline) {
		if running(addrs[0]) && running(addrs[1]) {
			overlapped = true
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-launched; err != nil {
		t.Fatal(err)
	}
	if !overlapped {
		t.Error("never observed both workers simulating at once; fleet is serializing jobs")
	}
}

// TestDistributedSpeedup is the fleet's reason to exist, asserted: four
// workers finish a 4-job workload more than 2x faster than one worker.
// Wall-clock ratios are hostile to oversubscribed CI hosts, so the gate is
// opt-in — scripts/distributed_gate.sh sets MARSHAL_DIST_SPEEDUP=1.
func TestDistributedSpeedup(t *testing.T) {
	if os.Getenv("MARSHAL_DIST_SPEEDUP") == "" {
		t.Skip("set MARSHAL_DIST_SPEEDUP=1 to run the fleet speedup gate")
	}
	if runtime.NumCPU() < 4 {
		// In-process workers share this host's cores; CPU-bound simulation
		// cannot finish faster than the cores allow, no matter how well the
		// coordinator spreads it.
		t.Skipf("fleet wall-clock speedup needs >= 4 host cores, have %d", runtime.NumCPU())
	}
	e := newEnv(t)
	srv := startSharedCache(t, e.m)
	// Long enough that simulation dwarfs per-job artifact + boot overhead.
	writeLoopOverlay(t, e, 100000000)
	e.write(t, "par.json", `{
  "name": "par", "base": "br-base", "overlay": "overlay-loop",
  "jobs": [
    {"name": "j0", "command": "/bench/loop"},
    {"name": "j1", "command": "/bench/loop"},
    {"name": "j2", "command": "/bench/loop"},
    {"name": "j3", "command": "/bench/loop"}
  ]}`)
	if _, err := e.m.Build("par", BuildOpts{}); err != nil {
		t.Fatal(err)
	}

	elapsed := func(n int) time.Duration {
		addrs, _, _ := startWorkerFleet(t, srv.URL, n)
		start := time.Now()
		if _, err := e.m.Launch("par", LaunchOpts{Workers: addrs, WorkerPoll: 2 * time.Millisecond}); err != nil {
			t.Fatalf("launch on %d worker(s): %v", n, err)
		}
		return time.Since(start)
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	t.Logf("1 worker: %s, 4 workers: %s (%.2fx)", t1, t4, float64(t1)/float64(t4))
	if t4*2 >= t1 {
		t.Errorf("4-worker fleet not >2x faster: 1 worker %s, 4 workers %s", t1, t4)
	}
}

// BenchmarkDistributedLaunch times a `workgen -jobs 4` workload on fleets
// of 1, 2, and 4 workers — the paper's parallel-simulation scaling story,
// measured over the wire.
func BenchmarkDistributedLaunch(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			wlDir := b.TempDir()
			if _, err := workgen.EmitParallelWorkload(wlDir, 4, "test"); err != nil {
				b.Fatal(err)
			}
			m, err := New(b.TempDir(), wlDir)
			if err != nil {
				b.Fatal(err)
			}
			srv := startSharedCache(b, m)
			addrs, _, _ := startWorkerFleet(b, srv.URL, n)
			if _, err := m.Build("parjobs", BuildOpts{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Launch("parjobs", LaunchOpts{Workers: addrs, WorkerPoll: 2 * time.Millisecond}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
