package core

import (
	"fmt"
	"os"
	"path/filepath"

	"firemarshal/internal/install"
	"firemarshal/internal/spec"
)

// InstallOpts controls the install command (§III-E).
type InstallOpts struct {
	// Simulator selects the connector (default "firesim").
	Simulator string
	// NoDisk installs the initramfs-embedded binaries.
	NoDisk bool
}

// Install builds the workload and writes a cycle-exact simulator
// configuration referencing the exact artifact files that functional
// simulation used — nothing is rebuilt or modified between launch and
// install (§III-E).
func (m *Marshal) Install(nameOrPath string, opts InstallOpts) (string, error) {
	if opts.Simulator == "" {
		opts.Simulator = "firesim"
	}
	conn, err := install.GetConnector(opts.Simulator)
	if err != nil {
		return "", err
	}
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return "", err
	}
	// Build the workload loaded above — a spec edited mid-command cannot
	// desynchronize the installed config from its artifacts.
	if _, err := m.BuildWorkload(w, BuildOpts{NoDisk: opts.NoDisk}); err != nil {
		return "", err
	}

	cfg := &install.Config{Workload: w.Name, Topology: "no_net"}

	targets := Targets(w)
	if len(w.Jobs) > 0 {
		targets = targets[1:] // jobs are the simulated nodes
		cfg.Topology = "simple"
	}

	// A bare-metal job acts as the RDMA memory server for PFA nodes.
	serverNode := ""
	for _, tgt := range targets {
		if tgt.Workload.EffectiveDistro() == "bare" {
			serverNode = tgt.Name
			break
		}
	}

	for _, tgt := range targets {
		job, err := m.jobConfig(tgt, opts, serverNode)
		if err != nil {
			return "", err
		}
		cfg.Jobs = append(cfg.Jobs, *job)
	}

	if hook, dir := EffectivePostRunHook(w); hook != "" {
		cfg.PostRunHook = hook
		cfg.PostRunHookDir = dir
	}
	if testing, testDir := EffectiveTesting(w); testing != nil && testing.RefDir != "" {
		ref := testing.RefDir
		if !filepath.IsAbs(ref) {
			ref = filepath.Join(testDir, ref)
		}
		cfg.RefDir = ref
	}

	destDir := m.InstallDir(w.Name)
	if err := conn.Install(cfg, destDir); err != nil {
		return "", err
	}
	m.logf("installed %s for %s at %s", w.Name, opts.Simulator, destDir)
	return destDir, nil
}

func (m *Marshal) jobConfig(tgt Target, opts InstallOpts, serverNode string) (*install.JobConfig, error) {
	w := tgt.Workload
	binPath := m.BinPath(tgt.Name)
	if opts.NoDisk {
		binPath = m.NoDiskBinPath(tgt.Name)
	}
	absBin, err := filepath.Abs(binPath)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(binPath); err != nil {
		return nil, fmt.Errorf("core: job %s has no boot binary: %w", tgt.Name, err)
	}
	job := &install.JobConfig{
		Name:    tgt.Name,
		Bin:     absBin,
		Outputs: EffectiveOutputs(w),
		Bare:    w.EffectiveDistro() == "bare",
	}
	if !opts.NoDisk {
		if imgPath := m.ImgPath(tgt.Name); fileExists(imgPath) {
			if job.Img, err = filepath.Abs(imgPath); err != nil {
				return nil, err
			}
		}
	}
	job.Devices = rtlDeviceProfile(w, serverNode)
	if job.Devices == "pfa-rdma" {
		job.ServerNode = serverNode
	}
	return job, nil
}

// rtlDeviceProfile translates the workload's functional golden-model
// profile (the `spike` option) into the RTL hardware configuration: a
// PFA-equipped SoC fetches over the real (simulated) network when a memory
// server node exists, and falls back to the golden model otherwise.
func rtlDeviceProfile(w *spec.Workload, serverNode string) string {
	switch w.EffectiveSpike() {
	case "pfa-spike", "pfa-golden":
		if serverNode != "" {
			return "pfa-rdma"
		}
		return "pfa-golden"
	case "gemmini", "gemmini-spike":
		return "gemmini"
	default:
		return ""
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}
