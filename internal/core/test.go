package core

import (
	"fmt"
	"os"
	"path/filepath"

	"firemarshal/internal/runtest"
	"firemarshal/internal/spec"
)

// TestOpts controls the test command (§III-D).
type TestOpts struct {
	// Manual compares an existing output directory instead of building and
	// launching (`marshal test --manual`, used to verify outputs of a
	// cycle-exact run, §III-E).
	Manual string
	// Jobs caps concurrent job simulations, like LaunchOpts.Jobs.
	Jobs int
}

// TestResult reports one target's test outcome.
type TestResult struct {
	Target   string
	Passed   bool
	Failures []runtest.Failure
	// Run is the launch result (nil for --manual).
	Run *RunResult
}

// Test builds and launches the workload, then compares run outputs against
// the workload's reference directory (§III-D). With opts.Manual it only
// performs the comparison.
func (m *Marshal) Test(nameOrPath string, opts TestOpts) ([]*TestResult, error) {
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return nil, err
	}
	testing, testDir := EffectiveTesting(w)
	if testing == nil || testing.RefDir == "" {
		return nil, fmt.Errorf("core: workload %q has no testing.refDir", w.Name)
	}
	refDir := testing.RefDir
	if !filepath.IsAbs(refDir) {
		refDir = filepath.Join(testDir, refDir)
	}

	if opts.Manual != "" {
		failures, err := runtest.CompareDirOpt(opts.Manual, refDir, testing.Strip)
		if err != nil {
			return nil, err
		}
		return []*TestResult{{Target: w.Name, Passed: len(failures) == 0, Failures: failures}}, nil
	}

	// Launch the workload already loaded above — no second spec read.
	runs, err := m.LaunchWorkload(w, LaunchOpts{Jobs: opts.Jobs})
	if err != nil {
		return nil, err
	}
	jobDirs := map[string]bool{}
	for _, job := range w.Jobs {
		jobDirs[job.Name] = true
	}
	var results []*TestResult
	for _, run := range runs {
		ref := refDirForTarget(w, refDir, run.Target)
		var skip func(string) bool
		if ref == refDir && len(w.Jobs) > 0 {
			// Top-level fallback: sibling jobs' reference subdirectories do
			// not apply to this job.
			skip = func(name string) bool { return jobDirs[name] }
		}
		failures, err := runtest.CompareDirFiltered(run.OutputDir, ref, testing.Strip, skip)
		if err != nil {
			return nil, err
		}
		// testing.timeout bounds the run in simulated seconds (guest time
		// at the platform's 1 GHz clock).
		if testing.TimeoutSec > 0 && run.Cycles > uint64(testing.TimeoutSec)*1_000_000_000 {
			failures = append(failures, runtest.Failure{
				RefFile: "timeout",
				Detail: fmt.Sprintf("run took %.3fs of guest time (limit %ds)",
					float64(run.Cycles)/1e9, testing.TimeoutSec),
			})
		}
		results = append(results, &TestResult{
			Target:   run.Target,
			Passed:   len(failures) == 0,
			Failures: failures,
			Run:      run,
		})
	}
	return results, nil
}

// refDirForTarget picks the reference directory for a job: multi-job
// workloads may keep per-job references in subdirectories named after the
// job; otherwise the top-level refDir applies to every target.
func refDirForTarget(w *spec.Workload, refDir, target string) string {
	if len(w.Jobs) == 0 {
		return refDir
	}
	for _, job := range w.Jobs {
		if w.Name+"-"+job.Name == target {
			sub := filepath.Join(refDir, job.Name)
			if dirExists(sub) {
				return sub
			}
		}
	}
	return refDir
}

func dirExists(p string) bool {
	info, err := os.Stat(p)
	return err == nil && info.IsDir()
}
