package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"firemarshal/internal/cas"
	casremote "firemarshal/internal/cas/remote"
	"firemarshal/internal/chaos"
	"firemarshal/internal/hostutil"
	lremote "firemarshal/internal/launcher/remote"
	"firemarshal/internal/obs"
	"firemarshal/internal/ratelimit"
)

// ChaosOpts parameterizes `marshal chaos`.
type ChaosOpts struct {
	// Seed names the fault schedule (chaos.DefaultPlan(Seed)).
	Seed int64
	// Workers is the loopback fleet size (default 3; minimum 2, so the
	// flaky worker and the slow worker are distinct machines).
	Workers int
	// HedgeAfter is the straggler-hedging threshold for the faulty run
	// (default 250ms).
	HedgeAfter time.Duration
	// SlowJobDelay is how long the slow worker stalls each lease before
	// executing it (default 2s) — what forces a hedge.
	SlowJobDelay time.Duration
	// BreakerCooldown shortens the remote-cache breaker's half-open
	// cooldown so recovery happens within the run (default 300ms).
	BreakerCooldown time.Duration
	// WorkerPoll is the coordinator's event-poll cadence (default 25ms).
	WorkerPoll time.Duration
	// JobTimeout bounds each job attempt (0 = none).
	JobTimeout time.Duration
	// Out receives the report (nil uses the Marshal log).
	Out io.Writer
}

// ChaosJob is one job's comparable outcome: everything that must be
// bit-identical between the clean and faulty runs.
type ChaosJob struct {
	Job           string
	Cycles        uint64
	Exit          int64
	ConsoleDigest string
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Seed        int64
	Fingerprint string
	// Jobs holds the faulty run's per-job outcomes (name-sorted);
	// Mismatches lists every divergence from the clean baseline (empty =
	// bit-identical).
	Jobs       []ChaosJob
	Mismatches []string

	// Survival metrics from the faulty run's registry.
	Healed            uint64  // cas_blobs_healed_total
	WritebackFailures uint64  // cas_writeback_failures_total
	WorkerQuarantines uint64  // remote_worker_quarantines_total
	QuarantinedNow    float64 // remote_workers_quarantined (gauge)
	Hedges            uint64  // remote_hedges_total
	ReconciledLeases  uint64  // remote_reconciled_leases_total
	LeaseExpiries     uint64  // remote_lease_expiries_total
	RateLimited       uint64  // cas_remote_rate_limited_total
	Throttled         uint64  // serve_throttled_total
	HTTPFaults        uint64  // chaos_http_faults_total
	StoreFaults       uint64  // chaos_store_* total
	BreakerState      float64 // cas_remote_breaker_state (gauge)
}

// Identical reports whether the faulty run matched the clean baseline
// bit-for-bit.
func (r *ChaosReport) Identical() bool { return len(r.Mismatches) == 0 }

// Chaos is the chaos gate: run the workload on a clean loopback fleet,
// run it again on an identical fleet under the seed's fault schedule —
// injected blob corruption in every worker store, dropped/5xx/429/
// truncated/duplicated HTTP traffic on every edge, one flaky worker the
// coordinator must quarantine, one slow worker it must hedge around, and
// a rate-limited hub — then assert zero lost jobs and bit-identical
// cycles, exit codes, and console bytes. The fault schedule is a pure
// function of (seed, site, call index), so the same seed replays the
// same faults (`marshal chaos -schedule-only` prints the schedule
// without running anything).
func (m *Marshal) Chaos(ctx context.Context, nameOrPath string, opts ChaosOpts) (*ChaosReport, error) {
	if opts.Workers <= 0 {
		opts.Workers = 3
	}
	if opts.Workers < 2 {
		opts.Workers = 2
	}
	if opts.HedgeAfter <= 0 {
		opts.HedgeAfter = 250 * time.Millisecond
	}
	if opts.SlowJobDelay <= 0 {
		opts.SlowJobDelay = 2 * time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 300 * time.Millisecond
	}
	if opts.WorkerPoll <= 0 {
		opts.WorkerPoll = 25 * time.Millisecond
	}
	out := opts.Out
	if out == nil {
		out = m.Log
	}

	plan := chaos.DefaultPlan(opts.Seed)
	report := &ChaosReport{Seed: opts.Seed, Fingerprint: plan.Fingerprint()}
	fmt.Fprintf(out, "chaos: seed=%d fingerprint=%s workers=%d\n", opts.Seed, report.Fingerprint, opts.Workers)

	base := filepath.Join(m.WorkDir, "chaos")
	if err := os.RemoveAll(base); err != nil {
		return nil, err
	}

	fmt.Fprintf(out, "chaos: clean fleet run (baseline)\n")
	cleanJobs, _, err := m.runChaosFleet(ctx, nameOrPath, filepath.Join(base, "clean"), nil, opts)
	if err != nil {
		return nil, fmt.Errorf("core: chaos baseline run failed: %w", err)
	}

	fmt.Fprintf(out, "chaos: faulty fleet run (schedule %s)\n", report.Fingerprint)
	faultyJobs, reg, err := m.runChaosFleet(ctx, nameOrPath, filepath.Join(base, "faulty"), &plan, opts)
	if err != nil {
		return nil, fmt.Errorf("core: chaos run lost jobs under fault schedule: %w", err)
	}

	report.Jobs = faultyJobs
	report.Mismatches = compareChaosJobs(cleanJobs, faultyJobs)

	report.Healed = reg.Counter("cas_blobs_healed_total").Value()
	report.WritebackFailures = reg.Counter("cas_writeback_failures_total").Value()
	report.WorkerQuarantines = reg.Counter("remote_worker_quarantines_total").Value()
	report.QuarantinedNow = reg.Gauge("remote_workers_quarantined").Value()
	report.Hedges = reg.Counter("remote_hedges_total").Value()
	report.ReconciledLeases = reg.Counter("remote_reconciled_leases_total").Value()
	report.LeaseExpiries = reg.Counter("remote_lease_expiries_total").Value()
	report.RateLimited = reg.Counter("cas_remote_rate_limited_total").Value()
	report.Throttled = reg.Counter("serve_throttled_total").Value()
	report.HTTPFaults = reg.Counter("chaos_http_faults_total").Value()
	report.StoreFaults = reg.Counter("chaos_store_flips_total").Value() +
		reg.Counter("chaos_store_torn_writes_total").Value() +
		reg.Counter("chaos_store_nospace_total").Value()
	report.BreakerState = reg.Gauge("cas_remote_breaker_state").Value()

	for _, j := range report.Jobs {
		fmt.Fprintf(out, "chaos: job %-24s cycles=%d exit=%d console=%.16s\n", j.Job, j.Cycles, j.Exit, j.ConsoleDigest)
	}
	for _, line := range []struct {
		name  string
		value float64
	}{
		{"chaos_http_faults_total", float64(report.HTTPFaults)},
		{"chaos_store_faults_total", float64(report.StoreFaults)},
		{"cas_blobs_healed_total", float64(report.Healed)},
		{"cas_writeback_failures_total", float64(report.WritebackFailures)},
		{"cas_remote_rate_limited_total", float64(report.RateLimited)},
		{"cas_remote_breaker_state", report.BreakerState},
		{"serve_throttled_total", float64(report.Throttled)},
		{"remote_worker_quarantines_total", float64(report.WorkerQuarantines)},
		{"remote_workers_quarantined", report.QuarantinedNow},
		{"remote_hedges_total", float64(report.Hedges)},
		{"remote_reconciled_leases_total", float64(report.ReconciledLeases)},
		{"remote_lease_expiries_total", float64(report.LeaseExpiries)},
	} {
		fmt.Fprintf(out, "chaos: metric %s %g\n", line.name, line.value)
	}

	if !report.Identical() {
		for _, mm := range report.Mismatches {
			fmt.Fprintf(out, "chaos: MISMATCH %s\n", mm)
		}
		return report, fmt.Errorf("core: chaos run diverged from clean baseline (%d mismatches)", len(report.Mismatches))
	}
	fmt.Fprintf(out, "chaos: PASS — %d job(s) bit-identical under fault schedule %s\n", len(report.Jobs), report.Fingerprint)
	return report, nil
}

// compareChaosJobs diffs the clean baseline against the faulty outcomes.
func compareChaosJobs(clean, faulty []ChaosJob) []string {
	var mismatches []string
	index := map[string]ChaosJob{}
	for _, j := range clean {
		index[j.Job] = j
	}
	if len(clean) != len(faulty) {
		mismatches = append(mismatches, fmt.Sprintf("job count: clean=%d faulty=%d", len(clean), len(faulty)))
	}
	for _, f := range faulty {
		c, ok := index[f.Job]
		if !ok {
			mismatches = append(mismatches, fmt.Sprintf("job %s: missing from clean baseline", f.Job))
			continue
		}
		if f.Cycles != c.Cycles {
			mismatches = append(mismatches, fmt.Sprintf("job %s: cycles %d != %d", f.Job, f.Cycles, c.Cycles))
		}
		if f.Exit != c.Exit {
			mismatches = append(mismatches, fmt.Sprintf("job %s: exit %d != %d", f.Job, f.Exit, c.Exit))
		}
		if f.ConsoleDigest != c.ConsoleDigest {
			mismatches = append(mismatches, fmt.Sprintf("job %s: console %.12s != %.12s", f.Job, f.ConsoleDigest, c.ConsoleDigest))
		}
	}
	return mismatches
}

// runChaosFleet stands up one self-contained loopback fleet — a sandboxed
// Marshal, a shared hub cache server, opts.Workers worker daemons — runs
// the workload across it, and returns the name-sorted per-job outcomes.
// With a nil plan the fleet is clean; with a plan every I/O edge gets its
// own fault-injecting site, every worker store gets tamper faults plus a
// pre-planted corrupt artifact blob (guaranteeing the self-heal path
// runs), worker 0 becomes the flaky host the coordinator must
// quarantine, the last worker stalls its leases (the hedged straggler),
// and the hub is rate-limited.
func (m *Marshal) runChaosFleet(ctx context.Context, nameOrPath, dir string, plan *chaos.Plan, opts ChaosOpts) ([]ChaosJob, *obs.Registry, error) {
	reg := obs.NewRegistry()
	sub, err := New(filepath.Join(dir, "work"), m.searchPath...)
	if err != nil {
		return nil, nil, err
	}
	sub.Obs = reg
	sub.Log = m.Log

	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		closers = append(closers, func() { srv.Close() })
		return ln.Addr().String(), nil
	}

	// The shared hub cache every fleet member publishes into. The faulty
	// hub sits behind the same per-client rate limiter `marshal cache
	// serve -rate` uses, so 429 backpressure is part of the schedule.
	hubStore, err := cas.Open(filepath.Join(dir, "hub"))
	if err != nil {
		return nil, nil, err
	}
	var hub http.Handler = casremote.NewServer(hubStore)
	if plan != nil {
		hub = ratelimit.New(ratelimit.Options{RPS: 400, MaxInFlight: 64, Obs: reg}).Middleware(hub)
	}
	hubAddr, err := serve(hub)
	if err != nil {
		return nil, nil, err
	}
	hubURL := "http://" + hubAddr

	sub.RemoteCache = hubURL
	if plan != nil {
		sub.RemoteTransport = plan.Transport("coord-cache", nil, reg)
	}
	cache, err := sub.Cache()
	if err != nil {
		return nil, nil, err
	}
	if plan != nil {
		cache.SetBreakerCooldown(opts.BreakerCooldown)
	}

	// Build first: the artifact digests must be known before the workers
	// exist, so corrupt copies can be planted in their stores. The launch
	// below re-runs the build as a no-op.
	w, err := sub.Loader.Load(nameOrPath)
	if err != nil {
		return nil, nil, err
	}
	if _, err := sub.BuildWorkload(w, BuildOpts{}); err != nil {
		return nil, nil, err
	}
	var targets []Target
	if len(w.Jobs) > 0 {
		targets = Targets(w)[1:]
	} else {
		targets = Targets(w)
	}
	var artifactDigests []string
	for _, tgt := range targets {
		for _, path := range []string{sub.BinPath(tgt.Name), sub.ImgPath(tgt.Name)} {
			if data, err := os.ReadFile(path); err == nil {
				artifactDigests = append(artifactDigests, hostutil.HashBytes(data))
			}
		}
	}

	var addrs []string
	for i := 0; i < opts.Workers; i++ {
		wdir := filepath.Join(dir, fmt.Sprintf("worker%d", i))
		storeDir := filepath.Join(wdir, "store")
		store, err := cas.Open(storeDir)
		if err != nil {
			return nil, nil, err
		}
		client := casremote.NewClient(hubURL, 0)
		if plan != nil {
			store.SetTamper(plan.StoreFaults(fmt.Sprintf("worker%d-store", i), reg))
			client.SetTransport(plan.Transport(fmt.Sprintf("worker%d-cache", i), nil, reg))
			for _, digest := range artifactDigests {
				if err := chaos.PlantCorruptBlob(storeDir, digest); err != nil {
					return nil, nil, err
				}
			}
		}
		var runner lremote.Runner = &lremote.ArtifactRunner{
			Store:   store,
			Remote:  client,
			CkptDir: filepath.Join(wdir, "ckpt"),
			Obs:     reg,
		}
		if plan != nil && i == opts.Workers-1 {
			runner = &slowRunner{inner: runner, delay: opts.SlowJobDelay}
		}
		worker := lremote.NewWorker(lremote.WorkerConfig{Runner: runner, Slots: 1, Obs: reg})
		closers = append(closers, worker.Close)
		addr, err := serve(worker)
		if err != nil {
			return nil, nil, err
		}
		addrs = append(addrs, addr)
	}

	lopts := LaunchOpts{
		Workers:    addrs,
		WorkerPoll: opts.WorkerPoll,
		JobTimeout: opts.JobTimeout,
		Retries:    3,
		Context:    ctx,
	}
	if plan != nil {
		// Worker 0 is the error-prone machine: an extra 95% of the
		// coordinator's requests to it drop, which is what the health
		// scorer must quarantine. The flaky map is injected after the
		// fingerprint is taken — listener ports vary run to run, the
		// schedule itself does not.
		flaky := *plan
		flaky.FlakyHosts = map[string]uint32{addrs[0]: 950}
		lopts.WorkerTransport = flaky.Transport("coord-worker", nil, reg)
		lopts.HedgeAfter = opts.HedgeAfter
	}

	results, err := sub.Launch(nameOrPath, lopts)
	if err != nil {
		return nil, reg, err
	}
	if len(results) != len(targets) {
		return nil, reg, fmt.Errorf("core: chaos fleet lost jobs: %d of %d results", len(results), len(targets))
	}
	jobs := make([]ChaosJob, 0, len(results))
	for _, r := range results {
		console, err := os.ReadFile(r.Uartlog)
		if err != nil {
			return nil, reg, fmt.Errorf("core: chaos fleet job %s has no console: %w", r.Target, err)
		}
		jobs = append(jobs, ChaosJob{
			Job:           r.Target,
			Cycles:        r.Cycles,
			Exit:          r.ExitCode,
			ConsoleDigest: hostutil.HashBytes(console),
		})
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Job < jobs[j].Job })
	return jobs, reg, nil
}

// slowRunner stalls every lease before executing it — the chaos fleet's
// straggler, which the coordinator must hedge onto a healthy worker. The
// stall honors the attempt context, so worker shutdown isn't delayed.
type slowRunner struct {
	inner lremote.Runner
	delay time.Duration
}

func (s *slowRunner) Run(ctx context.Context, spec lremote.JobSpec, emit func(lremote.Event)) (*lremote.RunOutput, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Run(ctx, spec, emit)
}
