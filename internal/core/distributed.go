package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"firemarshal/internal/boards"
	"firemarshal/internal/cas"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/firmware"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/launcher"
	"firemarshal/internal/launcher/remote"
	"firemarshal/internal/spec"
)

// launchFleet runs the launch's jobs across a worker fleet instead of
// local simulation slots (`marshal launch -workers a:1,b:2`). Artifacts
// travel through the shared remote cache; job specs carry only digests;
// the coordinator folds every worker event into the same journal a local
// launch writes, so `-resume` and the compacted manifest behave
// identically. Returns the summary in place of the local pool's.
func (m *Marshal) launchFleet(ctx context.Context, targets []Target, opts LaunchOpts, jnl *launcher.Journal,
	prior map[string]launcher.PriorJob, carried map[string]launcher.Result, results []*RunResult) (*launcher.Summary, error) {

	if opts.Trace {
		return nil, fmt.Errorf("core: -trace writes a local per-instruction log; it cannot run on a worker fleet")
	}
	cache, err := m.Cache()
	if err != nil {
		return nil, err
	}
	rem := cache.Remote()
	if rem == nil {
		return nil, fmt.Errorf("core: distributed launch needs a shared artifact cache: set -remote-cache to a `marshal cache serve` server every worker can reach")
	}

	specIdx := map[string]int{}
	var specs []remote.JobSpec
	for i, tgt := range targets {
		if _, ok := carried[tgt.Name]; ok {
			continue // already ok in the interrupted run; result carried over
		}
		js, err := m.fleetJobSpec(ctx, cache, tgt, opts)
		if err != nil {
			return nil, err
		}
		if p, ok := prior[tgt.Name]; ok {
			js.Prior = p.Attempts
			js.Resumed = opts.Resume && p.Attempts > 0
		}
		if opts.Resume {
			// An interrupted job's latest checkpoint pointer is on the
			// coordinator; its blobs are already in the shared cache (every
			// snapshot replicates before it is announced), so the pointer
			// alone re-arms a bit-identical mid-exec restore on any worker.
			if ptr, err := checkpoint.LoadPointer(checkpoint.PointerPath(m.CkptDir(), tgt.Name)); err == nil {
				js.Ckpt = ptr
				js.Resumed = true
				m.logf("resume: %s will restore on a worker from its checkpoint (instret %d)", tgt.Name, ptr.Instret)
			}
		}
		specIdx[tgt.Name] = i
		specs = append(specs, *js)
	}

	return remote.Launch(ctx, specs, remote.CoordOptions{
		Workers:    opts.Workers,
		Journal:    jnl,
		LeaseTTL:   opts.WorkerLeaseTTL,
		Poll:       opts.WorkerPoll,
		Transport:  opts.WorkerTransport,
		HedgeAfter: opts.HedgeAfter,
		Obs:        m.Obs,
		Log:        m.Log,
		OnCheckpoint: func(ptr *checkpoint.Pointer) {
			// Persisting the pointer coordinator-side is what makes a
			// COORDINATOR crash resumable too: `-resume` finds it here.
			if err := checkpoint.WritePointer(m.CkptDir(), ptr); err != nil {
				m.logf("persisting checkpoint pointer for %s: %v", ptr.Job, err)
			}
		},
		OnDone: func(ev remote.Event) error {
			i := specIdx[ev.Job]
			return m.materializeFleetJob(ctx, cache, targets[i], opts, ev, &results[i])
		},
	})
}

// fleetJobSpec publishes one target's artifacts to the shared cache and
// captures everything a worker needs to execute it.
func (m *Marshal) fleetJobSpec(ctx context.Context, cache *cas.Cache, tgt Target, opts LaunchOpts) (*remote.JobSpec, error) {
	w := tgt.Workload

	// Device-driver hooks run host-side callbacks that only exist in this
	// process; such jobs cannot move to a worker.
	args := append(w.EffectiveQemuArgs(), w.EffectiveSpikeArgs()...)
	drivers, err := boards.DeviceProfile(w.EffectiveSpike(), boards.ProfileOpts{
		RemotePages: pfaPagesFromArgs(args),
	})
	if err != nil {
		return nil, err
	}
	if len(drivers) > 0 {
		return nil, fmt.Errorf("core: job %s uses device drivers (%s board profile); distributed launch runs pure-CPU jobs only", tgt.Name, w.EffectiveSpike())
	}

	binPath := m.BinPath(tgt.Name)
	if opts.NoDisk {
		binPath = m.NoDiskBinPath(tgt.Name)
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		return nil, fmt.Errorf("core: target %s has no boot binary (bare-metal base without bin?): %w", tgt.Name, err)
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return nil, err
	}
	binDigest, err := publishBlob(ctx, cache, binData)
	if err != nil {
		return nil, fmt.Errorf("core: publishing boot binary for %s: %w", tgt.Name, err)
	}
	imgDigest := ""
	if !opts.NoDisk && !boot.IsBare() {
		imgData, err := os.ReadFile(m.ImgPath(tgt.Name))
		if err != nil {
			return nil, fmt.Errorf("core: target %s has no disk image: %w", tgt.Name, err)
		}
		if imgDigest, err = publishBlob(ctx, cache, imgData); err != nil {
			return nil, fmt.Errorf("core: publishing disk image for %s: %w", tgt.Name, err)
		}
	}

	return &remote.JobSpec{
		Name:      tgt.Name,
		Sim:       funcsimVariant(opts, w),
		Bin:       binDigest,
		Img:       imgDigest,
		Args:      args,
		Outputs:   EffectiveOutputs(w),
		Timeout:   opts.JobTimeout,
		Retries:   opts.Retries,
		CkptEvery: opts.CkptEvery,
	}, nil
}

// materializeFleetJob pulls a finished job's console and outputs from the
// shared cache into its run directory and runs the post-run hook — the
// run directory ends up byte-identical to a local launch's.
func (m *Marshal) materializeFleetJob(ctx context.Context, cache *cas.Cache, tgt Target, opts LaunchOpts, ev remote.Event, out **RunResult) error {
	if ev.Record == nil || ev.Record.Status != launcher.StatusOK {
		return nil // failed/cancelled jobs have nothing published
	}
	runDir := m.RunDir(tgt.Name)
	if err := os.RemoveAll(runDir); err != nil {
		return err
	}
	res := &RunResult{
		Target:    tgt.Name,
		OutputDir: runDir,
		Uartlog:   filepath.Join(runDir, "uartlog"),
		ExitCode:  ev.Record.Exit,
		Cycles:    ev.Record.Cycles,
		Simulator: funcsimVariant(opts, tgt.Workload),
	}
	console, err := fetchBlob(ctx, cache, ev.Console)
	if err != nil {
		return fmt.Errorf("core: fetching console for %s: %w", tgt.Name, err)
	}
	if err := hostutil.WriteFileAtomic(res.Uartlog, console, 0o644); err != nil {
		return err
	}
	for rel, digest := range ev.Outputs {
		data, err := fetchBlob(ctx, cache, digest)
		if err != nil {
			return fmt.Errorf("core: fetching output %s for %s: %w", rel, tgt.Name, err)
		}
		if err := hostutil.WriteFileAtomic(filepath.Join(runDir, rel), data, 0o644); err != nil {
			return err
		}
	}
	if err := m.runPostRunHook(tgt.Workload, runDir); err != nil {
		return err
	}
	*out = res
	return nil
}

// funcsimVariant resolves the functional-simulator variant a workload
// launches on (mirrors launchTarget's choice).
func funcsimVariant(opts LaunchOpts, w *spec.Workload) string {
	if opts.Spike || w.EffectiveSpike() != "" {
		return "spike"
	}
	return "qemu"
}

// publishBlob stores data locally and replicates it to the remote cache.
// The upload retries with deterministic jitter: a single dropped request
// must not abort a whole fleet launch before it starts.
func publishBlob(ctx context.Context, cache *cas.Cache, data []byte) (string, error) {
	digest, err := cache.Local().Put(data)
	if err != nil {
		return "", err
	}
	var perr error
	for attempt := 0; attempt < 3; attempt++ {
		if perr = cache.Remote().PutBlob(ctx, digest, data); perr == nil {
			return digest, nil
		}
		if ctx.Err() != nil {
			break
		}
		if attempt < 2 {
			time.Sleep(5*time.Millisecond + hostutil.DetJitter(digest, attempt, 20*time.Millisecond))
		}
	}
	return "", perr
}

// fetchBlob reads a blob, local store first, shared cache on a miss. The
// remote fetch retries with deterministic jitter — a finished job's
// console must not be lost to one dropped response.
func fetchBlob(ctx context.Context, cache *cas.Cache, digest string) ([]byte, error) {
	if data, err := cache.Local().Get(digest); err == nil {
		return data, nil
	}
	var data []byte
	var gerr error
	for attempt := 0; attempt < 4; attempt++ {
		if data, gerr = cache.Remote().GetBlob(ctx, digest); gerr == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, gerr
		}
		if attempt < 3 {
			time.Sleep(5*time.Millisecond + hostutil.DetJitter(digest, attempt, 20*time.Millisecond))
		}
	}
	if gerr != nil {
		return nil, gerr
	}
	if _, err := cache.Local().Put(data); err != nil {
		return nil, err
	}
	return data, nil
}
