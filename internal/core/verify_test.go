package core

import (
	"context"
	"os"
	"testing"
	"time"

	"firemarshal/internal/verify"
)

// TestVerifyFarmLocal: the local verify-farm path end to end — a clean
// corpus produces a manifest at the default location, zero divergences,
// and nonzero coverage.
func TestVerifyFarmLocal(t *testing.T) {
	e := newEnv(t)
	res, err := e.m.VerifyFarm(context.Background(), VerifyOpts{
		Seeds:  []int64{1, 2, 3},
		Rounds: 0,
		Jobs:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 3 || res.Divergences != 0 || len(res.Signatures) != 0 {
		t.Errorf("clean farm: entries=%d divergences=%d signatures=%d",
			res.Entries, res.Divergences, len(res.Signatures))
	}
	if res.Coverage.Ratio() == 0 {
		t.Error("farm collected no coverage")
	}
	data, err := os.ReadFile(res.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	recs, sum, err := verify.ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || sum == nil {
		t.Errorf("manifest: %d records, summary=%v", len(recs), sum)
	}
}

// TestVerifyFarmBadOpts: usage errors surface before any simulation.
func TestVerifyFarmBadOpts(t *testing.T) {
	e := newEnv(t)
	if _, err := e.m.VerifyFarm(context.Background(), VerifyOpts{}); err == nil {
		t.Error("no seeds: want error")
	}
	if _, err := e.m.VerifyFarm(context.Background(), VerifyOpts{
		Seeds: []int64{1}, Fault: "bogus",
	}); err == nil {
		t.Error("bad fault spec: want error")
	}
}

// TestVerifyFarmFleetMatchesLocal: the same corpus evaluated locally and
// sharded across a 2-worker fleet reaches the same verdicts — same entry
// count, same divergence count, same signature set. Sharding is an
// execution detail, not a semantic one.
func TestVerifyFarmFleetMatchesLocal(t *testing.T) {
	e := newEnv(t)
	seeds := []int64{1, 2, 3, 4}
	// The Marshal's cache opens lazily and only binds the remote it sees
	// then — stand the shared cache up before the first (local) run.
	srv := startSharedCache(t, e.m)
	addrs, _, _ := startWorkerFleet(t, srv.URL, 2)

	local, err := e.m.VerifyFarm(context.Background(), VerifyOpts{Seeds: seeds, Rounds: 0})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := e.m.VerifyFarm(context.Background(), VerifyOpts{
		Seeds:      seeds,
		Rounds:     0,
		Workers:    addrs,
		WorkerPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Entries != local.Entries || fleet.Divergences != local.Divergences {
		t.Errorf("fleet entries=%d divergences=%d, local entries=%d divergences=%d",
			fleet.Entries, fleet.Divergences, local.Entries, local.Divergences)
	}
	if len(fleet.Signatures) != len(local.Signatures) {
		t.Errorf("fleet signatures=%v, local=%v", fleet.Signatures, local.Signatures)
	}
	// Workloads regenerate from seeds on the workers: each shard's entries
	// must carry the same source digests the local run computed.
	wantSrc := map[int64]string{}
	for _, r := range local.Records {
		wantSrc[r.Seed] = r.Source
	}
	for _, r := range fleet.Records {
		if r.Source != wantSrc[r.Seed] {
			t.Errorf("seed %d source digest %s on fleet, want %s", r.Seed, r.Source, wantSrc[r.Seed])
		}
	}
}

// TestVerifyFarmFleetDedupAcrossShards is the global-dedup contract: two
// shards that each catch the SAME injected bug (same seed, same fault)
// must merge to ONE unique signature, counted once per hit, with a
// single repro — fetched into the coordinator's local store.
func TestVerifyFarmFleetDedupAcrossShards(t *testing.T) {
	e := newEnv(t)
	srv := startSharedCache(t, e.m)
	addrs, _, _ := startWorkerFleet(t, srv.URL, 2)

	// Four copies of one seed, round-robined two per shard: every entry
	// diverges identically, on both workers.
	res, err := e.m.VerifyFarm(context.Background(), VerifyOpts{
		Seeds:      []int64{7, 7, 7, 7},
		Rounds:     0,
		Fault:      "fast:500:x27:0x1",
		Workers:    addrs,
		WorkerPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 4 || res.Divergences != 4 {
		t.Fatalf("entries=%d divergences=%d, want 4/4", res.Entries, res.Divergences)
	}
	if len(res.Signatures) != 1 {
		t.Fatalf("signatures = %v, want exactly one after cross-shard dedup", res.Signatures)
	}
	var sig string
	for s, n := range res.Signatures {
		sig = s
		if n != 4 {
			t.Errorf("signature %s count = %d, want 4", s, n)
		}
	}
	newSigs := 0
	for _, r := range res.Records {
		if r.NewSig {
			newSigs++
		}
		if r.Div != nil && r.Div.Instr != 500 {
			t.Errorf("entry %d bisected to instr %d, want 500", r.Entry, r.Div.Instr)
		}
	}
	if newSigs != 1 {
		t.Errorf("new_sig marks = %d, want 1", newSigs)
	}
	repro, ok := res.Repros[sig]
	if !ok || repro == "" {
		t.Fatalf("no repro for %s", sig)
	}
	cache, err := e.m.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if !cache.Local().Has(repro) {
		t.Errorf("repro %s not fetched into the coordinator's store", repro)
	}
	// The merged manifest round-trips.
	data, err := os.ReadFile(res.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	recs, sum, err := verify.ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || sum == nil || len(sum.Signatures) != 1 {
		t.Errorf("merged manifest: %d records, summary %+v", len(recs), sum)
	}
}
