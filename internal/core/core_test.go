package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/install"
)

// testEnv builds a Marshal over temp dirs with some workload files.
type testEnv struct {
	m       *Marshal
	wlDir   string
	workDir string
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	wlDir := t.TempDir()
	workDir := t.TempDir()
	m, err := New(workDir, wlDir)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{m: m, wlDir: wlDir, workDir: workDir}
}

func (e *testEnv) write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(e.wlDir, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func (e *testEnv) writeExec(t *testing.T, name, content string) string {
	t.Helper()
	p := e.write(t, name, content)
	os.Chmod(p, 0o755)
	return p
}

func readImg(t *testing.T, path string) *fsimg.FS {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsimg.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestBuildSimpleWorkload(t *testing.T) {
	e := newEnv(t)
	e.write(t, "hello.json", `{"name":"hello","base":"br-base","command":"echo hello-from-guest"}`)
	results, err := e.m.Build("hello", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	fs := readImg(t, results[0].Img)
	run, err := fs.ReadFile("/etc/marshal/run.sh")
	if err != nil || !strings.Contains(string(run), "echo hello-from-guest") {
		t.Errorf("run script = %q, %v", run, err)
	}
	// Boot binary decodes and has the default kernel.
	binData, _ := os.ReadFile(results[0].Bin)
	bb, err := firmware.Decode(binData)
	if err != nil {
		t.Fatal(err)
	}
	if bb.IsBare() || bb.Kernel == nil {
		t.Error("boot binary missing kernel")
	}
}

func TestLaunchProducesOutputs(t *testing.T) {
	e := newEnv(t)
	e.write(t, "bench.json", `{
  "name": "bench", "base": "br-base",
  "command": "echo score,42 > /output/res.csv",
  "outputs": ["/output/res.csv"]
}`)
	runs, err := e.m.Launch("bench", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %+v", runs)
	}
	uart, err := os.ReadFile(runs[0].Uartlog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(uart), "OpenSBI") {
		t.Error("uartlog missing boot banner")
	}
	res, err := os.ReadFile(filepath.Join(runs[0].OutputDir, "res.csv"))
	if err != nil || !strings.Contains(string(res), "score,42") {
		t.Errorf("output file: %q, %v", res, err)
	}
}

func TestInheritanceImageChain(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "overlay", "etc"), 0o755)
	e.write(t, "overlay/etc/bench.conf", "tuning=7\n")
	e.write(t, "parent.json", `{"name":"parent","base":"br-base","overlay":"overlay"}`)
	e.write(t, "child.json", `{"name":"child","base":"parent","command":"cat /etc/bench.conf"}`)
	results, err := e.m.Build("child", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := readImg(t, results[0].Img)
	conf, err := fs.ReadFile("/etc/bench.conf")
	if err != nil || string(conf) != "tuning=7\n" {
		t.Errorf("inherited overlay file: %q, %v", conf, err)
	}
	// Parent image also built.
	if _, err := os.Stat(e.m.ImgPath("parent")); err != nil {
		t.Error("parent image not built")
	}
}

func TestFilesOption(t *testing.T) {
	e := newEnv(t)
	e.writeExec(t, "tool.bin", "#!/fake\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","files":[["tool.bin","/usr/bin/tool"]],"command":"echo hi"}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := readImg(t, results[0].Img)
	f := fs.Lookup("/usr/bin/tool")
	if f == nil || !f.IsExec() {
		t.Error("files entry not applied with exec bit")
	}
}

func TestHostInitRuns(t *testing.T) {
	e := newEnv(t)
	e.writeExec(t, "gen.sh", "#!/bin/sh\necho generated-content > generated.txt\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","host-init":"gen.sh","files":[["generated.txt","/gen.txt"]],"command":"cat /gen.txt"}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := readImg(t, results[0].Img)
	data, err := fs.ReadFile("/gen.txt")
	if err != nil || !strings.Contains(string(data), "generated-content") {
		t.Errorf("host-init output not in image: %q, %v", data, err)
	}
}

func TestGuestInit(t *testing.T) {
	e := newEnv(t)
	e.write(t, "gi.sh", "echo installed > /var/guest-init-ran\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","guest-init":"gi.sh","command":"cat /var/guest-init-ran"}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := readImg(t, results[0].Img)
	data, err := fs.ReadFile("/var/guest-init-ran")
	if err != nil || !strings.Contains(string(data), "installed") {
		t.Errorf("guest-init did not persist: %q, %v", data, err)
	}
}

func TestGuestInitPackageInstall(t *testing.T) {
	e := newEnv(t)
	e.write(t, "gi.sh", "pkg install python3\n")
	e.write(t, "w.json", `{"name":"w","base":"fedora-base","guest-init":"gi.sh","command":"/usr/bin/python3"}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := readImg(t, results[0].Img)
	if fs.Lookup("/usr/bin/python3") == nil {
		t.Error("package not installed into image")
	}
}

func TestKernelFragmentAndModule(t *testing.T) {
	e := newEnv(t)
	e.write(t, "pfa.kfrag", "CONFIG_PFA=y\n")
	os.MkdirAll(filepath.Join(e.wlDir, "pfa-driver"), 0o755)
	e.write(t, "pfa-driver/pfa.c", "int init(void){}\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x",
	  "linux":{"config":"pfa.kfrag","modules":{"pfa":"pfa-driver"}}}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	binData, _ := os.ReadFile(results[0].Bin)
	bb, _ := firmware.Decode(binData)
	if !bb.Kernel.Config.Bool("PFA") {
		t.Error("fragment not merged")
	}
	if len(bb.Kernel.Modules) != 1 || bb.Kernel.Modules[0].Name != "pfa" {
		t.Errorf("modules = %+v", bb.Kernel.Modules)
	}
}

func TestBinCopiedFromParentWhenUnchanged(t *testing.T) {
	e := newEnv(t)
	e.write(t, "p.json", `{"name":"p","base":"br-base","linux":{"config":"f.kfrag"},"command":"echo p"}`)
	e.write(t, "f.kfrag", "CONFIG_PFA=y\n")
	e.write(t, "c.json", `{"name":"c","base":"p","command":"echo c"}`)
	results, err := e.m.Build("c", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	parentBin, _ := hostutil.HashFile(e.m.BinPath("p"))
	childBin, _ := hostutil.HashFile(results[0].Bin)
	if parentBin != childBin {
		t.Error("unchanged child should copy the parent's boot binary")
	}
}

func TestNoDisk(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo nodisk-run"}`)
	results, err := e.m.Build("w", BuildOpts{NoDisk: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].NoDiskBin == "" {
		t.Fatal("no-disk binary not built")
	}
	binData, _ := os.ReadFile(results[0].NoDiskBin)
	bb, err := firmware.Decode(binData)
	if err != nil {
		t.Fatal(err)
	}
	// The rootfs must be embedded in the initramfs (Fig. 3).
	initramfs, err := bb.Kernel.InitramfsFS()
	if err != nil {
		t.Fatal(err)
	}
	if initramfs.Lookup("/etc/marshal/run.sh") == nil {
		t.Error("run script not embedded in initramfs")
	}
	// And it boots without a disk.
	runs, err := e.m.Launch("w", LaunchOpts{NoDisk: true})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "nodisk-run") {
		t.Errorf("no-disk launch output missing: %s", uart)
	}
	if !strings.Contains(string(uart), "Mounted root (initramfs)") {
		t.Error("no-disk boot should mount initramfs root")
	}
}

func TestIncrementalRebuildSkips(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x"}`)
	if _, err := e.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	first := len(e.m.LastBuildStats.Executed)
	if first == 0 {
		t.Fatal("first build should execute tasks")
	}
	if _, err := e.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(e.m.LastBuildStats.Executed) != 0 {
		t.Errorf("no-op rebuild executed %v", e.m.LastBuildStats.Executed)
	}
	// Changing the spec rebuilds.
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo y"}`)
	if _, err := e.m.Build("w", BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if len(e.m.LastBuildStats.Executed) == 0 {
		t.Error("spec change should rebuild")
	}
}

func TestCleanForcesRebuild(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x"}`)
	e.m.Build("w", BuildOpts{})
	if _, err := e.m.Clean("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(e.m.ImgPath("w")); !os.IsNotExist(err) {
		t.Error("clean did not remove image")
	}
	e.m.Build("w", BuildOpts{})
	if len(e.m.LastBuildStats.Executed) == 0 {
		t.Error("build after clean should execute")
	}
}

func TestJobsBuildAndLaunch(t *testing.T) {
	e := newEnv(t)
	e.write(t, "multi.json", `{
  "name": "multi", "base": "br-base",
  "jobs": [
    {"name": "j0", "command": "echo job-zero"},
    {"name": "j1", "command": "echo job-one"}
  ]}`)
	results, err := e.m.Build("multi", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // root + 2 jobs
		t.Fatalf("results = %d", len(results))
	}
	runs, err := e.m.Launch("multi", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("launch should run each job: %d", len(runs))
	}
	uart0, _ := os.ReadFile(runs[0].Uartlog)
	uart1, _ := os.ReadFile(runs[1].Uartlog)
	if !strings.Contains(string(uart0), "job-zero") || !strings.Contains(string(uart1), "job-one") {
		t.Error("job outputs wrong")
	}
}

func TestLaunchSpecificJob(t *testing.T) {
	e := newEnv(t)
	e.write(t, "multi.json", `{
  "name": "multi", "base": "br-base",
  "jobs": [{"name": "a", "command": "echo aaa"}, {"name": "b", "command": "echo bbb"}]}`)
	runs, err := e.m.Launch("multi", LaunchOpts{Job: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Target != "multi-b" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestTestCommand(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs"), 0o755)
	e.write(t, "refs/uartlog", "expected-marker\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo expected-marker","testing":{"refDir":"refs"}}`)
	results, err := e.m.Test("w", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Errorf("test should pass: %+v", results[0].Failures)
	}
	// Failing case.
	e.write(t, "refs/uartlog", "absent-marker\n")
	results, err = e.m.Test("w", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Passed {
		t.Error("test should fail for absent marker")
	}
}

func TestTestManual(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs"), 0o755)
	e.write(t, "refs/uartlog", "manual-marker\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x","testing":{"refDir":"refs"}}`)
	outDir := t.TempDir()
	os.WriteFile(filepath.Join(outDir, "uartlog"), []byte("blah\nmanual-marker\n"), 0o644)
	results, err := e.m.Test("w", TestOpts{Manual: outDir})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Errorf("manual test should pass: %+v", results[0].Failures)
	}
}

func TestTestWithoutRefDir(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x"}`)
	if _, err := e.m.Test("w", TestOpts{}); err == nil {
		t.Error("expected error for missing testing.refDir")
	}
}

func TestPostRunHook(t *testing.T) {
	e := newEnv(t)
	e.writeExec(t, "hook.sh", "#!/bin/sh\necho processed > \"$1/processed.txt\"\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x","post-run-hook":"hook.sh"}`)
	runs, err := e.m.Launch("w", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(runs[0].OutputDir, "processed.txt")); err != nil {
		t.Error("post-run-hook did not run")
	}
}

func TestInstallWritesConfig(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x","outputs":["/output"]}`)
	dir, err := e.m.Install("w", InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := install.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != "w" || len(cfg.Jobs) != 1 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.Jobs[0].Bin == "" || cfg.Jobs[0].Img == "" {
		t.Error("job paths missing")
	}
	// The installed artifact is the identical file launch used.
	launchBin, _ := hostutil.HashFile(e.m.BinPath("w"))
	installedBin, _ := hostutil.HashFile(cfg.Jobs[0].Bin)
	if launchBin != installedBin {
		t.Error("install must reference the exact same artifacts")
	}
}

func TestArtifactIdentity(t *testing.T) {
	// §II claim: the exact same software runs deterministically across all
	// phases. Building twice from scratch yields bit-identical artifacts.
	build := func() (string, string) {
		e := newEnv(t)
		e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo identical"}`)
		results, err := e.m.Build("w", BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		bh, _ := hostutil.HashFile(results[0].Bin)
		ih, _ := hostutil.HashFile(results[0].Img)
		return bh, ih
	}
	b1, i1 := build()
	b2, i2 := build()
	if b1 != b2 {
		t.Error("boot binaries differ across identical builds")
	}
	if i1 != i2 {
		t.Error("disk images differ across identical builds")
	}
}

func TestCommandSurface(t *testing.T) {
	// Table I: build, launch, test, install must all exist with these
	// semantics; clean and status support them.
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs"), 0o755)
	e.write(t, "refs/uartlog", "tbl1\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo tbl1","testing":{"refDir":"refs"}}`)
	if _, err := e.m.Build("w", BuildOpts{}); err != nil {
		t.Errorf("build: %v", err)
	}
	if _, err := e.m.Launch("w", LaunchOpts{}); err != nil {
		t.Errorf("launch: %v", err)
	}
	if res, err := e.m.Test("w", TestOpts{}); err != nil || !res[0].Passed {
		t.Errorf("test: %v %+v", err, res)
	}
	if _, err := e.m.Install("w", InstallOpts{}); err != nil {
		t.Errorf("install: %v", err)
	}
	if _, err := e.m.Clean("w"); err != nil {
		t.Errorf("clean: %v", err)
	}
}

func TestHardcodedImgAndBin(t *testing.T) {
	e := newEnv(t)
	// Pre-build artifacts from another workload, then hard-code them.
	e.write(t, "donor.json", `{"name":"donor","base":"br-base","command":"echo donor"}`)
	results, err := e.m.Build("donor", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	imgCopy := filepath.Join(e.wlDir, "fixed.img")
	binCopy := filepath.Join(e.wlDir, "fixed-bin")
	hostutil.CopyFile(results[0].Img, imgCopy)
	hostutil.CopyFile(results[0].Bin, binCopy)

	e.write(t, "fixed.json", `{"name":"fixed","base":"br-base","img":"fixed.img","bin":"fixed-bin"}`)
	runs, err := e.m.Launch("fixed", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "donor") {
		t.Error("hard-coded artifacts not used")
	}
}

func TestRootfsSizeEnforced(t *testing.T) {
	e := newEnv(t)
	big := strings.Repeat("x", 4096)
	e.write(t, "big.txt", big)
	e.write(t, "w.json", `{"name":"w","base":"br-base","rootfs-size":"1KiB","files":[["big.txt","/big.txt"]],"command":"echo x"}`)
	if _, err := e.m.Build("w", BuildOpts{}); err == nil {
		t.Error("expected rootfs-size overflow error")
	}
}

func TestMissingBaseError(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"nonexistent-base","command":"echo x"}`)
	if _, err := e.m.Build("w", BuildOpts{}); err == nil {
		t.Error("expected missing base error")
	}
}

func TestBareMetalJobWithBin(t *testing.T) {
	e := newEnv(t)
	// A bare-metal "server" binary is just an MEX1 file; synthesize one.
	exeData := buildTrivialExe(t)
	os.WriteFile(filepath.Join(e.wlDir, "serve"), exeData, 0o755)
	e.write(t, "w.json", `{
  "name": "w", "base": "br-base",
  "jobs": [
    {"name": "client", "command": "echo client-run"},
    {"name": "server", "base": "bare-metal", "bin": "serve"}
  ]}`)
	results, err := e.m.Build("w", BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var serverRes *BuildResult
	for i := range results {
		if results[i].Target == "w-server" {
			serverRes = &results[i]
		}
	}
	if serverRes == nil || serverRes.Bin == "" {
		t.Fatalf("server target missing: %+v", results)
	}
	if serverRes.Img != "" {
		t.Error("bare-metal job should have no image")
	}
	runs, err := e.m.Launch("w", LaunchOpts{Job: "server"})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].ExitCode != 0 {
		t.Errorf("server exit = %d", runs[0].ExitCode)
	}
}

func TestTestingTimeout(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs"), 0o755)
	e.write(t, "refs/uartlog", "slow-marker\n")
	// A 1-second guest-time budget: boot alone (~2.3M cycles) passes, but
	// sleep 2 charges ~2e9 cycles and must trip the timeout.
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"sleep 2; echo slow-marker","testing":{"refDir":"refs","timeout":1}}`)
	results, err := e.m.Test("w", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Passed {
		t.Error("run exceeding testing.timeout must fail")
	}
	found := false
	for _, f := range results[0].Failures {
		if f.RefFile == "timeout" {
			found = true
		}
	}
	if !found {
		t.Errorf("timeout failure not reported: %+v", results[0].Failures)
	}
}

func TestTestingStripDisabled(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs"), 0o755)
	// The reference includes a timestamp prefix that will never match the
	// run's own timestamps; with strip enabled (default) it matches
	// because both sides are cleaned.
	e.write(t, "refs/uartlog", "[  999.999999] Linux version\n")
	e.write(t, "w.json", `{"name":"w","base":"br-base","command":"echo x","testing":{"refDir":"refs"}}`)
	results, err := e.m.Test("w", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Errorf("strip=true (default) should clean timestamps: %+v", results[0].Failures)
	}
	// strip=false compares raw: the bogus timestamp cannot match.
	e.write(t, "w2.json", `{"name":"w2","base":"br-base","command":"echo x","testing":{"refDir":"refs","strip":false}}`)
	results, err = e.m.Test("w2", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Passed {
		t.Error("strip=false must compare raw output")
	}
}

func TestSpikeOptionSelectsVariant(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base","spike":"pfa-spike","command":"echo on-spike"}`)
	runs, err := e.m.Launch("w", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Simulator != "spike" {
		t.Errorf("simulator = %q, want spike (workload has a spike option)", runs[0].Simulator)
	}
}

func TestYAMLWorkloadEndToEnd(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.yaml", "name: w\nbase: br-base\ncommand: echo from-yaml\n")
	runs, err := e.m.Launch("w", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "from-yaml") {
		t.Error("yaml workload did not run")
	}
}

func TestOutputsDirectoryExtraction(t *testing.T) {
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"br-base",
	  "command":"echo a > /output/a.txt; echo b > /output/sub/b.txt",
	  "outputs":["/output"]}`)
	runs, err := e.m.Launch("w", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"output/a.txt", "output/sub/b.txt"} {
		if _, err := os.Stat(filepath.Join(runs[0].OutputDir, rel)); err != nil {
			t.Errorf("missing extracted %s: %v", rel, err)
		}
	}
}

func TestLaunchTrace(t *testing.T) {
	e := newEnv(t)
	// A workload that executes a real guest binary so the trace has
	// instructions in it.
	exeData := buildTrivialExe(t)
	os.WriteFile(filepath.Join(e.wlDir, "prog"), exeData, 0o755)
	e.write(t, "w.json", `{"name":"w","base":"br-base","files":[["prog","/prog"]],"command":"/prog"}`)
	runs, err := e.m.Launch("w", LaunchOpts{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(filepath.Join(runs[0].OutputDir, "trace.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), "ecall") || !strings.Contains(string(trace), "core 0:") {
		t.Errorf("trace content wrong:\n%.300s", trace)
	}
}

func TestMultiJobPerJobRefs(t *testing.T) {
	e := newEnv(t)
	os.MkdirAll(filepath.Join(e.wlDir, "refs", "a"), 0o755)
	e.write(t, "refs/uartlog", "OpenSBI\n")         // applies to all jobs
	e.write(t, "refs/a/uartlog", "job-a-special\n") // only job a
	e.write(t, "w.json", `{
  "name": "w", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo job-a-special"},
    {"name": "b", "command": "echo job-b-other"}
  ],
  "testing": {"refDir": "refs"}}`)
	results, err := e.m.Test("w", TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Passed {
			t.Errorf("%s failed: %+v", res.Target, res.Failures)
		}
	}
}

func TestOpenPitonBoardBoots(t *testing.T) {
	// The second board's base uses bbl firmware; the boot banner differs.
	e := newEnv(t)
	e.write(t, "w.json", `{"name":"w","base":"op-base","command":"echo on-openpiton"}`)
	runs, err := e.m.Launch("w", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "bbl loader") {
		t.Errorf("expected bbl banner:\n%.300s", uart)
	}
	if !strings.Contains(string(uart), "on-openpiton") {
		t.Error("workload did not run")
	}
}

func TestSpikeArgsSizeRemoteRegion(t *testing.T) {
	// spike-args carry simulator configuration (Table II); --pfa-pages
	// sizes the golden model's remote region. Touching page 5 needs more
	// than 4 pages.
	exe := buildPFATouchExe(t, 5)
	e := newEnv(t)
	os.WriteFile(filepath.Join(e.wlDir, "touch"), exe, 0o755)
	// Too small: fault at page 5 lands outside the remote region, the load
	// reads unmapped zeros (no device claims it) and the checksum differs —
	// but with a region of only 4 pages the access at page 5 is plain
	// memory, so the program still exits 0. Use 8 pages and assert success,
	// then assert the device actually serviced it via nonzero data.
	e.write(t, "small.json", `{"name":"small","base":"br-base","spike":"pfa-spike",
	  "spike-args":["--pfa-pages=8"],
	  "linux":{"config":"pfa.kfrag"},
	  "files":[["touch","/touch"]],"command":"/touch"}`)
	e.write(t, "pfa.kfrag", "CONFIG_PFA=y\n")
	runs, err := e.m.Launch("small", LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "touched,") || strings.Contains(string(uart), "touched,0") {
		t.Errorf("remote page not serviced by golden model:\n%s", uart)
	}
}
