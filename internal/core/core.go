// Package core implements the FireMarshal workload lifecycle (§II): the
// build pipeline that turns a workload specification into a boot binary and
// disk image (Fig. 3), the launch command that runs those artifacts in
// functional simulation, the test command that compares run outputs against
// references, and the install command that emits cycle-exact simulator
// configurations. The exact same artifact files flow through every phase —
// "the workload outputs are not modified in any way between the launch and
// install commands" (§III-E).
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"firemarshal/internal/boards"
	"firemarshal/internal/dag"
	"firemarshal/internal/spec"
)

// Marshal is the workload manager rooted at a working directory.
type Marshal struct {
	// Loader resolves workload names.
	Loader *spec.Loader
	// WorkDir holds build state and artifacts.
	WorkDir string
	// Log receives progress messages.
	Log io.Writer

	// LastBuildStats reports what the dependency tracker did on the most
	// recent Build (for `marshal status` and the rebuild benchmarks).
	LastBuildStats BuildStats
}

// BuildStats summarizes one build's dependency-tracker activity.
type BuildStats struct {
	Executed []string
	Skipped  []string
}

// New creates a Marshal instance with the default board's base workloads
// registered.
func New(workDir string, searchPath ...string) (*Marshal, error) {
	if workDir == "" {
		return nil, fmt.Errorf("core: empty work directory")
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}
	l := spec.NewLoader(searchPath...)
	if err := boards.RegisterBuiltins(l); err != nil {
		return nil, err
	}
	return &Marshal{Loader: l, WorkDir: workDir, Log: io.Discard}, nil
}

func (m *Marshal) logf(format string, args ...any) {
	fmt.Fprintf(m.Log, format+"\n", args...)
}

// Artifact paths.

func (m *Marshal) imagesDir() string { return filepath.Join(m.WorkDir, "images") }

// ImgPath returns the disk-image artifact path for a target name.
func (m *Marshal) ImgPath(target string) string {
	return filepath.Join(m.imagesDir(), target+".img")
}

// BinPath returns the boot-binary artifact path for a target name.
func (m *Marshal) BinPath(target string) string {
	return filepath.Join(m.imagesDir(), target+"-bin")
}

// NoDiskBinPath returns the initramfs-embedded boot binary path (Fig. 3,
// --no-disk).
func (m *Marshal) NoDiskBinPath(target string) string {
	return filepath.Join(m.imagesDir(), target+"-bin-nodisk")
}

// RunDir returns the launch output directory for a target.
func (m *Marshal) RunDir(target string) string {
	return filepath.Join(m.WorkDir, "runs", target)
}

// InstallDir returns the directory `install` writes simulator configs to.
func (m *Marshal) InstallDir(name string) string {
	return filepath.Join(m.WorkDir, "firesim", name)
}

func (m *Marshal) stateDB() string { return filepath.Join(m.WorkDir, "state.json") }

// Target identifies one buildable/runnable node of a workload: the root
// workload itself, or one of its jobs.
type Target struct {
	// Name is the artifact name (root name, or "<root>-<job>").
	Name string
	// JobName is the bare job name ("" for the root).
	JobName string
	// Workload is the resolved description.
	Workload *spec.Workload
}

// Targets enumerates the buildable targets of a workload: the root, then
// its jobs in declaration order.
func Targets(w *spec.Workload) []Target {
	out := []Target{{Name: w.Name, Workload: w}}
	for _, job := range w.Jobs {
		out = append(out, Target{Name: w.Name + "-" + job.Name, JobName: job.Name, Workload: job})
	}
	return out
}

// FindTarget returns the target with the given job name ("" = root).
func FindTarget(w *spec.Workload, jobName string) (Target, error) {
	for _, tgt := range Targets(w) {
		if tgt.JobName == jobName {
			return tgt, nil
		}
	}
	return Target{}, fmt.Errorf("core: workload %q has no job %q", w.Name, jobName)
}

// Clean removes build state and artifacts for a workload (all targets).
func (m *Marshal) Clean(nameOrPath string) error {
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return err
	}
	eng, err := dag.NewEngine(m.stateDB())
	if err != nil {
		return err
	}
	for _, tgt := range Targets(w) {
		for _, p := range []string{m.ImgPath(tgt.Name), m.BinPath(tgt.Name), m.NoDiskBinPath(tgt.Name)} {
			os.Remove(p)
		}
		for _, prefix := range []string{"host:", "bin:", "img:", "nodisk:"} {
			if err := eng.Forget(prefix + tgt.Name); err != nil {
				return err
			}
		}
		os.RemoveAll(m.RunDir(tgt.Name))
	}
	m.logf("cleaned %s", w.Name)
	return nil
}

// EffectiveOutputs collects output paths across the inheritance chain.
func EffectiveOutputs(w *spec.Workload) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range w.Chain() {
		for _, o := range c.Outputs {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

// EffectivePostRunHook returns the nearest post-run-hook in the chain and
// the directory it resolves host paths against.
func EffectivePostRunHook(w *spec.Workload) (script, dir string) {
	for c := w; c != nil; c = c.Parent() {
		if c.PostRunHook != "" {
			return c.PostRunHook, c.Dir
		}
	}
	return "", ""
}

// EffectiveTesting returns the nearest testing options in the chain along
// with the workload directory they belong to.
func EffectiveTesting(w *spec.Workload) (*spec.TestingOpts, string) {
	for c := w; c != nil; c = c.Parent() {
		if c.Testing != nil {
			return c.Testing, c.Dir
		}
	}
	return nil, ""
}

// sortedUnique returns a sorted, de-duplicated copy.
func sortedUnique(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// describeChain renders the inheritance chain for logs.
func describeChain(w *spec.Workload) string {
	var names []string
	for _, c := range w.Chain() {
		names = append(names, c.Name)
	}
	return strings.Join(names, " -> ")
}
