// Package core implements the FireMarshal workload lifecycle (§II): the
// build pipeline that turns a workload specification into a boot binary and
// disk image (Fig. 3), the launch command that runs those artifacts in
// functional simulation, the test command that compares run outputs against
// references, and the install command that emits cycle-exact simulator
// configurations. The exact same artifact files flow through every phase —
// "the workload outputs are not modified in any way between the launch and
// install commands" (§III-E).
package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"firemarshal/internal/boards"
	"firemarshal/internal/cas"
	"firemarshal/internal/cas/remote"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/dag"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
	"firemarshal/internal/spec"
)

// Marshal is the workload manager rooted at a working directory.
type Marshal struct {
	// Loader resolves workload names.
	Loader *spec.Loader
	// WorkDir holds build state and artifacts.
	WorkDir string
	// Log receives progress messages.
	Log io.Writer

	// CacheDir overrides the artifact-cache location. Empty means
	// <WorkDir>/cache; point several checkouts at one directory to share
	// a build cache between them.
	CacheDir string
	// RemoteCache is the base URL of a `marshal cache serve` server
	// ("" disables the remote tier). An unreachable remote degrades the
	// build to local-only caching, never fails it.
	RemoteCache string
	// RemoteTransport, when set, wraps the remote-cache client's HTTP
	// transport (chaos fault injection).
	RemoteTransport http.RoundTripper

	// LastBuildStats reports what the dependency tracker did on the most
	// recent Build (for `marshal status` and the rebuild benchmarks).
	LastBuildStats BuildStats

	// LastLaunch reports the most recent Launch's per-job scheduling
	// summary — `marshal launch` renders it as the summary table, and the
	// Fig. 6 speedup experiment reads its wall-clock numbers.
	// LastManifest is where that launch wrote its JSONL run manifest.
	LastLaunch   *launcher.Summary
	LastManifest string

	// Obs is the metrics registry every layer of a run reports into
	// (cas_*, dag_*, launcher_*, checkpoint_*, sim_*). A nil registry
	// resolves to the process-wide obs.Default, so instrumentation stays
	// on even when no one asked for a snapshot.
	Obs *obs.Registry

	// runSpan is the root span of the launch in progress; builds started
	// by that launch nest under it. Nil outside a launch — span methods
	// are nil-safe, so standalone builds trace nothing at no cost.
	runSpan *obs.Span

	// searchPath remembers the loader's workload search path so derived
	// instances (the chaos harness's sandboxed fleets) resolve the same
	// workloads.
	searchPath []string

	cache *cas.Cache
}

// BuildStats summarizes one build's dependency-tracker activity.
type BuildStats struct {
	// Executed tasks ran their build action; Restored tasks were served
	// from the artifact cache without running; Skipped were up to date.
	Executed []string
	Skipped  []string
	Restored []string
	// Cache reports the artifact cache's hit/miss/byte counters.
	Cache cas.CacheStats
}

// New creates a Marshal instance with the default board's base workloads
// registered.
func New(workDir string, searchPath ...string) (*Marshal, error) {
	if workDir == "" {
		return nil, fmt.Errorf("core: empty work directory")
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}
	l := spec.NewLoader(searchPath...)
	if err := boards.RegisterBuiltins(l); err != nil {
		return nil, err
	}
	return &Marshal{Loader: l, WorkDir: workDir, Log: io.Discard, searchPath: searchPath}, nil
}

func (m *Marshal) logf(format string, args ...any) {
	fmt.Fprintf(m.Log, format+"\n", args...)
}

// Artifact paths.

func (m *Marshal) imagesDir() string { return filepath.Join(m.WorkDir, "images") }

// ImgPath returns the disk-image artifact path for a target name.
func (m *Marshal) ImgPath(target string) string {
	return filepath.Join(m.imagesDir(), target+".img")
}

// BinPath returns the boot-binary artifact path for a target name.
func (m *Marshal) BinPath(target string) string {
	return filepath.Join(m.imagesDir(), target+"-bin")
}

// NoDiskBinPath returns the initramfs-embedded boot binary path (Fig. 3,
// --no-disk).
func (m *Marshal) NoDiskBinPath(target string) string {
	return filepath.Join(m.imagesDir(), target+"-bin-nodisk")
}

// RunDir returns the launch output directory for a target.
func (m *Marshal) RunDir(target string) string {
	return filepath.Join(m.WorkDir, "runs", target)
}

// ManifestPath returns where Launch writes a workload's JSONL run
// manifest: one record per job, in declaration order.
func (m *Marshal) ManifestPath(name string) string {
	return filepath.Join(m.WorkDir, "runs", name+".manifest.jsonl")
}

// TracePath returns where Launch writes a workload's span trace: one
// JSON object per span, deterministically ordered (see internal/obs).
func (m *Marshal) TracePath(name string) string {
	return filepath.Join(m.WorkDir, "runs", name+".trace.jsonl")
}

// JournalPath returns where an in-flight launch journals per-job events.
// The journal exists only between launch start and successful compaction
// into the manifest; its presence marks the run as interrupted.
func (m *Marshal) JournalPath(name string) string {
	return m.ManifestPath(name) + ".journal"
}

// CkptDir is where per-job checkpoint pointer files live. It sits outside
// the per-target run directories, which launches wipe on every attempt.
func (m *Marshal) CkptDir() string {
	return filepath.Join(m.WorkDir, "runs", ".ckpt")
}

// InstallDir returns the directory `install` writes simulator configs to.
func (m *Marshal) InstallDir(name string) string {
	return filepath.Join(m.WorkDir, "firesim", name)
}

func (m *Marshal) stateDB() string { return filepath.Join(m.WorkDir, "state.json") }

// EffectiveCacheDir is where the artifact cache lives.
func (m *Marshal) EffectiveCacheDir() string {
	if m.CacheDir != "" {
		return m.CacheDir
	}
	return filepath.Join(m.WorkDir, "cache")
}

// Cache opens (once) the content-addressed artifact cache, attaching the
// remote-cache client when RemoteCache is configured.
func (m *Marshal) Cache() (*cas.Cache, error) {
	if m.cache != nil {
		return m.cache, nil
	}
	store, err := cas.Open(m.EffectiveCacheDir())
	if err != nil {
		return nil, err
	}
	var rem cas.Remote
	if m.RemoteCache != "" {
		cl := remote.NewClient(m.RemoteCache, 0)
		if m.RemoteTransport != nil {
			cl.SetTransport(m.RemoteTransport)
		}
		rem = cl
	}
	m.cache = cas.NewCache(store, rem)
	m.cache.SetObs(m.Obs)
	return m.cache, nil
}

// HubCache builds a cas.Cache wrapping this checkout's local store with a
// client for the central hub at hubURL. `marshal cache serve -hub` hands
// it to the server as its write/read-through side: replication to the hub
// rides the cache's circuit breaker, so a dead hub degrades the edge to
// local-only instead of failing requests.
func (m *Marshal) HubCache(hubURL string) (*cas.Cache, error) {
	c, err := m.Cache()
	if err != nil {
		return nil, err
	}
	cl := remote.NewClient(hubURL, 0)
	if m.RemoteTransport != nil {
		cl.SetTransport(m.RemoteTransport)
	}
	hub := cas.NewCache(c.Local(), cl)
	hub.SetObs(m.Obs)
	return hub, nil
}

// CacheGC prunes action-cache entries not referenced by any workload's
// recorded build state, then drops blobs no surviving action references.
// Blobs referenced by a resumable run's checkpoints (any job with a live
// pointer file) are pinned and survive, so a GC between an interruption
// and the `-resume` cannot destroy the run's state.
func (m *Marshal) CacheGC() (cas.GCStats, error) {
	c, err := m.Cache()
	if err != nil {
		return cas.GCStats{}, err
	}
	eng, err := dag.NewEngine(m.stateDB())
	if err != nil {
		return cas.GCStats{}, err
	}
	live := map[string]bool{}
	for _, key := range eng.ActionKeys() {
		live[key] = true
	}
	pinned, err := m.pinnedBlobs(c.Local())
	if err != nil {
		return cas.GCStats{}, err
	}
	return c.Local().GC(live, pinned)
}

// pinnedBlobs collects every blob digest reachable from a live checkpoint
// pointer: the checkpoint document itself plus the pages, platform state,
// and console transcripts it references.
func (m *Marshal) pinnedBlobs(store *cas.Store) (map[string]bool, error) {
	ptrs, err := checkpoint.Pointers(m.CkptDir())
	if err != nil {
		return nil, err
	}
	pinned := map[string]bool{}
	for _, ptr := range ptrs {
		pinned[ptr.Digest] = true
		cp, err := checkpoint.Load(store, ptr)
		if err != nil {
			// A dangling pointer cannot pin what it cannot name; its job
			// resumes from scratch.
			continue
		}
		for _, d := range cp.Refs() {
			pinned[d] = true
		}
	}
	return pinned, nil
}

// CacheVerify re-hashes every blob and checks action outputs, then
// additionally checks every live checkpoint's referenced blobs are
// present — a resumable run whose state was lost surfaces here rather
// than at resume time.
func (m *Marshal) CacheVerify() ([]string, error) {
	c, err := m.Cache()
	if err != nil {
		return nil, err
	}
	store := c.Local()
	problems, err := store.Verify()
	if err != nil {
		return problems, err
	}
	ptrs, err := checkpoint.Pointers(m.CkptDir())
	if err != nil {
		return problems, err
	}
	for _, ptr := range ptrs {
		cp, err := checkpoint.Load(store, ptr)
		if err != nil {
			problems = append(problems, fmt.Sprintf("checkpoint pointer for %s: %v", ptr.Job, err))
			continue
		}
		problems = append(problems, cp.Verify(store)...)
	}
	return problems, nil
}

// CacheRepair is `cache verify -repair`: verify first (corrupt blobs are
// quarantined, becoming misses), then refetch every referenced-but-
// missing blob — action outputs and live-checkpoint refs — from the
// remote cache. It returns the verify problems, how many blobs were
// restored, and how many references remain missing (not on the remote
// either; those degrade to a rebuild). Without a configured remote the
// verify still runs but nothing can heal.
func (m *Marshal) CacheRepair(ctx context.Context) (problems []string, healed, unhealed int, err error) {
	c, err := m.Cache()
	if err != nil {
		return nil, 0, 0, err
	}
	problems, err = m.CacheVerify()
	if err != nil {
		return problems, 0, 0, err
	}
	store := c.Local()

	// Collect every digest the store is supposed to hold.
	want := map[string]bool{}
	actions, err := store.Actions()
	if err != nil {
		return problems, 0, 0, err
	}
	for _, a := range actions {
		for _, o := range a.Outputs {
			want[o.Digest] = true
		}
	}
	ptrs, err := checkpoint.Pointers(m.CkptDir())
	if err != nil {
		return problems, 0, 0, err
	}
	for _, ptr := range ptrs {
		want[ptr.Digest] = true
		if cp, err := checkpoint.Load(store, ptr); err == nil {
			for _, d := range cp.Refs() {
				want[d] = true
			}
		}
	}

	digests := make([]string, 0, len(want))
	for d := range want {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	rem := c.Remote()
	for _, digest := range digests {
		if store.Has(digest) {
			continue
		}
		if rem == nil {
			unhealed++
			continue
		}
		data, gerr := rem.GetBlob(ctx, digest)
		if gerr != nil {
			unhealed++
			m.logf("repair: blob %.12s not recoverable from remote: %v", digest, gerr)
			continue
		}
		if _, perr := store.Put(data); perr != nil {
			unhealed++
			m.logf("repair: blob %.12s refetched but not writable: %v", digest, perr)
			continue
		}
		healed++
		m.Obs.Counter("cas_blobs_healed_total").Inc()
		m.logf("repair: healed blob %.12s from remote cache", digest)
	}
	return problems, healed, unhealed, nil
}

// Target identifies one buildable/runnable node of a workload: the root
// workload itself, or one of its jobs.
type Target struct {
	// Name is the artifact name (root name, or "<root>-<job>").
	Name string
	// JobName is the bare job name ("" for the root).
	JobName string
	// Workload is the resolved description.
	Workload *spec.Workload
}

// Targets enumerates the buildable targets of a workload: the root, then
// its jobs in declaration order.
func Targets(w *spec.Workload) []Target {
	out := []Target{{Name: w.Name, Workload: w}}
	for _, job := range w.Jobs {
		out = append(out, Target{Name: w.Name + "-" + job.Name, JobName: job.Name, Workload: job})
	}
	return out
}

// FindTarget returns the target with the given job name ("" = root).
func FindTarget(w *spec.Workload, jobName string) (Target, error) {
	for _, tgt := range Targets(w) {
		if tgt.JobName == jobName {
			return tgt, nil
		}
	}
	return Target{}, fmt.Errorf("core: workload %q has no job %q", w.Name, jobName)
}

// Clean removes build state and artifacts for a workload (all targets),
// then garbage-collects the artifact cache: action entries no longer
// referenced by any workload's recorded state are dropped, along with any
// blobs only they referenced. It reports what the GC reclaimed.
func (m *Marshal) Clean(nameOrPath string) (cas.GCStats, error) {
	w, err := m.Loader.Load(nameOrPath)
	if err != nil {
		return cas.GCStats{}, err
	}
	eng, err := dag.NewEngine(m.stateDB())
	if err != nil {
		return cas.GCStats{}, err
	}
	for _, tgt := range Targets(w) {
		for _, p := range []string{m.ImgPath(tgt.Name), m.BinPath(tgt.Name), m.NoDiskBinPath(tgt.Name)} {
			os.Remove(p)
		}
		for _, prefix := range []string{"host:", "bin:", "img:", "nodisk:"} {
			if err := eng.Forget(prefix + tgt.Name); err != nil {
				return cas.GCStats{}, err
			}
		}
		os.RemoveAll(m.RunDir(tgt.Name))
	}
	gc, err := m.CacheGC()
	if err != nil {
		return gc, err
	}
	m.logf("cleaned %s (cache gc: %d actions, %d blobs, %d bytes reclaimed)",
		w.Name, gc.ActionsRemoved, gc.BlobsRemoved, gc.BytesReclaimed)
	return gc, nil
}

// EffectiveOutputs collects output paths across the inheritance chain.
func EffectiveOutputs(w *spec.Workload) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range w.Chain() {
		for _, o := range c.Outputs {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

// EffectivePostRunHook returns the nearest post-run-hook in the chain and
// the directory it resolves host paths against.
func EffectivePostRunHook(w *spec.Workload) (script, dir string) {
	for c := w; c != nil; c = c.Parent() {
		if c.PostRunHook != "" {
			return c.PostRunHook, c.Dir
		}
	}
	return "", ""
}

// EffectiveTesting returns the nearest testing options in the chain along
// with the workload directory they belong to.
func EffectiveTesting(w *spec.Workload) (*spec.TestingOpts, string) {
	for c := w; c != nil; c = c.Parent() {
		if c.Testing != nil {
			return c.Testing, c.Dir
		}
	}
	return nil, ""
}

// sortedUnique returns a sorted, de-duplicated copy.
func sortedUnique(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// describeChain renders the inheritance chain for logs.
func describeChain(w *spec.Workload) string {
	var names []string
	for _, c := range w.Chain() {
		names = append(names, c.Name)
	}
	return strings.Join(names, " -> ")
}
