package core

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/launcher"
	"firemarshal/internal/workgen"
)

// readManifest parses a JSONL run manifest into launcher records.
func readManifest(t *testing.T, path string) []launcher.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []launcher.Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r launcher.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("manifest line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestParallelLaunchDeterministic is the acceptance gate for -j: the same
// generated 4-job workload launched sequentially and with 4 workers must
// report bit-identical per-job cycle counts, and the run manifest must list
// every job ok, in declaration order.
func TestParallelLaunchDeterministic(t *testing.T) {
	e := newEnv(t)
	if _, err := workgen.EmitParallelWorkload(e.wlDir, 4, "test"); err != nil {
		t.Fatal(err)
	}

	cycles := func(jobs int) map[string]uint64 {
		results, err := e.m.Launch("parjobs", LaunchOpts{Jobs: jobs})
		if err != nil {
			t.Fatalf("launch -j %d: %v", jobs, err)
		}
		if len(results) != 4 {
			t.Fatalf("launch -j %d: %d results", jobs, len(results))
		}
		out := map[string]uint64{}
		for _, r := range results {
			if r.ExitCode != 0 {
				t.Errorf("-j %d: job %s exit=%d", jobs, r.Target, r.ExitCode)
			}
			out[r.Target] = r.Cycles
		}
		return out
	}

	seq := cycles(1)
	par := cycles(4)
	for name, c := range seq {
		if par[name] != c {
			t.Errorf("job %s cycles differ: -j1=%d -j4=%d", name, c, par[name])
		}
	}

	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 4 {
		t.Fatalf("manifest records = %d", len(recs))
	}
	for i, r := range recs {
		want := []string{"parjobs-job00", "parjobs-job01", "parjobs-job02", "parjobs-job03"}[i]
		if r.Job != want || r.Status != launcher.StatusOK || r.Attempts != 1 {
			t.Errorf("manifest[%d] = %+v, want job %s ok", i, r, want)
		}
		if r.Cycles == 0 || r.Cycles != par[r.Job] {
			t.Errorf("manifest[%d] cycles %d != result %d", i, r.Cycles, par[r.Job])
		}
	}
}

// TestParallelLaunchTimeout launches a hung guest binary next to a quick
// job: the hang must be killed at the per-job timeout without stalling its
// sibling, and the whole launch must finish in bounded wall time.
func TestParallelLaunchTimeout(t *testing.T) {
	e := newEnv(t)
	exe, err := asm.Assemble(`
_start:
    li t0, 0
hang:
    beqz t0, hang
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := e.wlDir + "/overlay-hang/hang"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/loop", isa.EncodeExecutable(exe), 0o755); err != nil {
		t.Fatal(err)
	}
	e.write(t, "mix.json", `{
  "name": "mix", "base": "br-base", "overlay": "overlay-hang",
  "jobs": [
    {"name": "quick", "command": "echo quick-done"},
    {"name": "hang", "command": "/hang/loop"}
  ]}`)

	start := time.Now()
	results, err := e.m.Launch("mix", LaunchOpts{
		Jobs:       2,
		JobTimeout: 300 * time.Millisecond,
		Retries:    2, // timeouts must NOT be retried
	})
	wall := time.Since(start)
	if err == nil {
		t.Fatal("expected launch error for timed-out job")
	}
	if !strings.Contains(err.Error(), "1/2 jobs did not succeed") {
		t.Errorf("error = %v", err)
	}
	if wall > 15*time.Second {
		t.Errorf("hung job stalled the launch: wall = %s", wall)
	}
	if len(results) != 1 || results[0].Target != "mix-quick" || results[0].ExitCode != 0 {
		t.Errorf("sibling results = %+v", results)
	}

	recs := readManifest(t, e.m.LastManifest)
	if len(recs) != 2 {
		t.Fatalf("manifest records = %d", len(recs))
	}
	if recs[0].Job != "mix-quick" || recs[0].Status != launcher.StatusOK {
		t.Errorf("quick record = %+v", recs[0])
	}
	if recs[1].Job != "mix-hang" || recs[1].Status != launcher.StatusTimeout || recs[1].Attempts != 1 {
		t.Errorf("hang record = %+v", recs[1])
	}
}
