// Package kconfig models the Linux kernel configuration system as used by
// FireMarshal (§III-B.4a): a board-provided default configuration plus
// user-supplied "fragments" containing only the options to change. Fragments
// merge in order, more recently defined options overwriting earlier
// duplicates — the exact semantics of the kernel's merge_config.sh.
//
// The textual format is the kernel's: `CONFIG_FOO=y`, `CONFIG_BAR=128`,
// `CONFIG_BAZ="string"`, and the idiomatic disable line
// `# CONFIG_FOO is not set`.
package kconfig

import (
	"fmt"
	"sort"
	"strings"

	"firemarshal/internal/hostutil"
)

// Config is a set of kernel configuration options.
type Config struct {
	opts map[string]string // name (without CONFIG_ prefix) -> value; "n" means explicitly unset
}

// New returns an empty configuration.
func New() *Config {
	return &Config{opts: map[string]string{}}
}

// Parse reads a config or fragment in kernel .config syntax.
func Parse(src string) (*Config, error) {
	c := New()
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Accept "# CONFIG_FOO is not set"; ignore other comments.
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(rest, "CONFIG_") && strings.HasSuffix(rest, " is not set") {
				name := strings.TrimSuffix(strings.TrimPrefix(rest, "CONFIG_"), " is not set")
				name = strings.TrimSpace(name)
				if name == "" {
					return nil, fmt.Errorf("kconfig: line %d: empty option name", i+1)
				}
				c.opts[name] = "n"
			}
			continue
		}
		if !strings.HasPrefix(line, "CONFIG_") {
			return nil, fmt.Errorf("kconfig: line %d: expected CONFIG_ option, got %q", i+1, line)
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("kconfig: line %d: missing '=' in %q", i+1, line)
		}
		name := strings.TrimPrefix(line[:eq], "CONFIG_")
		if name == "" {
			return nil, fmt.Errorf("kconfig: line %d: empty option name", i+1)
		}
		c.opts[name] = line[eq+1:]
	}
	return c, nil
}

// Get returns the value of an option and whether it is present. Options set
// to "n" ("is not set") report present with value "n".
func (c *Config) Get(name string) (string, bool) {
	v, ok := c.opts[name]
	return v, ok
}

// Bool reports whether the option is enabled (=y or =m).
func (c *Config) Bool(name string) bool {
	v := c.opts[name]
	return v == "y" || v == "m"
}

// Int returns the integer value of an option, or def when absent/invalid.
func (c *Config) Int(name string, def int) int {
	v, ok := c.opts[name]
	if !ok {
		return def
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return def
	}
	return n
}

// String returns the string value with surrounding quotes stripped.
func (c *Config) String(name string, def string) string {
	v, ok := c.opts[name]
	if !ok {
		return def
	}
	return strings.Trim(v, `"`)
}

// Set assigns an option.
func (c *Config) Set(name, value string) {
	c.opts[name] = value
}

// Merge applies fragments in order onto a copy of c; later fragments win,
// matching §III-B.4a: "merged in order, with more recently defined options
// overwriting earlier duplicates."
func (c *Config) Merge(fragments ...*Config) *Config {
	out := New()
	for k, v := range c.opts {
		out.opts[k] = v
	}
	for _, frag := range fragments {
		if frag == nil {
			continue
		}
		for k, v := range frag.opts {
			out.opts[k] = v
		}
	}
	return out
}

// Names returns all option names in sorted order.
func (c *Config) Names() []string {
	names := make([]string, 0, len(c.opts))
	for k := range c.opts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of options present.
func (c *Config) Len() int { return len(c.opts) }

// Encode renders the configuration in kernel .config syntax, sorted so the
// output is deterministic.
func (c *Config) Encode() string {
	var b strings.Builder
	for _, name := range c.Names() {
		v := c.opts[name]
		if v == "n" {
			fmt.Fprintf(&b, "# CONFIG_%s is not set\n", name)
		} else {
			fmt.Fprintf(&b, "CONFIG_%s=%s\n", name, v)
		}
	}
	return b.String()
}

// Hash returns a deterministic hash of the configuration, used in
// dependency tracking and boot-binary identity.
func (c *Config) Hash() string {
	return hostutil.HashStrings(c.Encode())
}

// Diff returns a human-readable list of differences from old to c, for
// `marshal status` style introspection.
func (c *Config) Diff(old *Config) []string {
	var out []string
	seen := map[string]bool{}
	for _, name := range c.Names() {
		seen[name] = true
		nv := c.opts[name]
		ov, ok := old.opts[name]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("+CONFIG_%s=%s", name, nv))
		case ov != nv:
			out = append(out, fmt.Sprintf("~CONFIG_%s: %s -> %s", name, ov, nv))
		}
	}
	for _, name := range old.Names() {
		if !seen[name] {
			out = append(out, fmt.Sprintf("-CONFIG_%s", name))
		}
	}
	return out
}

// RISCVDefault returns the board-independent starting configuration,
// modelling the kernel's RISC-V defconfig that FireMarshal begins from.
func RISCVDefault() *Config {
	c := New()
	defaults := map[string]string{
		"RISCV":           "y",
		"64BIT":           "y",
		"MMU":             "y",
		"SMP":             "y",
		"NR_CPUS":         "8",
		"HZ":              "100",
		"SERIAL_UART":     "y",
		"BLK_DEV":         "y",
		"EXT4_FS":         "y",
		"TMPFS":           "y",
		"PROC_FS":         "y",
		"SYSFS":           "y",
		"MODULES":         "y",
		"SWAP":            "y",
		"NET":             "y",
		"PACKET":          "y",
		"UNIX":            "y",
		"PRINTK":          "y",
		"PRINTK_TIME":     "n",
		"PFA":             "n",
		"ACCEL_GEMM":      "n",
		"FRONTSWAP":       "n",
		"CGROUPS":         "y",
		"MEMCG":           "n",
		"PREEMPT":         "n",
		"DEBUG_KERNEL":    "n",
		"CMDLINE":         `"console=uart0"`,
		"INITRAMFS_FORCE": "n",
	}
	for k, v := range defaults {
		c.opts[k] = v
	}
	return c
}
