package kconfig

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	c, err := Parse(`
CONFIG_PFA=y
CONFIG_NR_CPUS=4
CONFIG_CMDLINE="console=uart0 swap=on"
# CONFIG_DEBUG_KERNEL is not set
# a plain comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Bool("PFA") {
		t.Error("PFA should be enabled")
	}
	if c.Int("NR_CPUS", 0) != 4 {
		t.Error("NR_CPUS wrong")
	}
	if c.String("CMDLINE", "") != "console=uart0 swap=on" {
		t.Errorf("CMDLINE = %q", c.String("CMDLINE", ""))
	}
	if v, ok := c.Get("DEBUG_KERNEL"); !ok || v != "n" {
		t.Errorf("DEBUG_KERNEL = %q ok=%v", v, ok)
	}
	if c.Bool("DEBUG_KERNEL") {
		t.Error("'is not set' option must report disabled")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"NOT_A_CONFIG=y",
		"CONFIG_NOEQUALS",
		"CONFIG_=y",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestMergeLaterWins(t *testing.T) {
	base, _ := Parse("CONFIG_A=1\nCONFIG_B=1\nCONFIG_C=1\n")
	frag1, _ := Parse("CONFIG_B=2\nCONFIG_D=2\n")
	frag2, _ := Parse("CONFIG_B=3\n# CONFIG_C is not set\n")
	merged := base.Merge(frag1, frag2)

	want := map[string]string{"A": "1", "B": "3", "C": "n", "D": "2"}
	for k, v := range want {
		if got, _ := merged.Get(k); got != v {
			t.Errorf("%s = %q, want %q", k, got, v)
		}
	}
	// Original must be untouched.
	if got, _ := base.Get("B"); got != "1" {
		t.Error("Merge mutated receiver")
	}
}

func TestMergeNilFragment(t *testing.T) {
	base, _ := Parse("CONFIG_A=1\n")
	merged := base.Merge(nil)
	if got, _ := merged.Get("A"); got != "1" {
		t.Error("nil fragment broke merge")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	src := "CONFIG_A=y\nCONFIG_B=\"x y\"\n# CONFIG_C is not set\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != c.Hash() {
		t.Error("round trip changed hash")
	}
}

func TestEncodeSorted(t *testing.T) {
	c := New()
	c.Set("ZZZ", "y")
	c.Set("AAA", "y")
	enc := c.Encode()
	if strings.Index(enc, "AAA") > strings.Index(enc, "ZZZ") {
		t.Error("encoding not sorted")
	}
}

func TestHashDeterministic(t *testing.T) {
	mk := func() *Config {
		c := New()
		c.Set("B", "2")
		c.Set("A", "1")
		return c
	}
	if mk().Hash() != mk().Hash() {
		t.Error("hash not deterministic")
	}
	c := mk()
	c.Set("A", "9")
	if c.Hash() == mk().Hash() {
		t.Error("hash insensitive to change")
	}
}

func TestDiff(t *testing.T) {
	oldC, _ := Parse("CONFIG_A=1\nCONFIG_B=1\n")
	newC, _ := Parse("CONFIG_A=2\nCONFIG_C=1\n")
	diff := newC.Diff(oldC)
	want := []string{"~CONFIG_A: 1 -> 2", "+CONFIG_C=1", "-CONFIG_B"}
	if !reflect.DeepEqual(diff, want) {
		t.Errorf("diff = %v, want %v", diff, want)
	}
}

func TestRISCVDefault(t *testing.T) {
	c := RISCVDefault()
	if !c.Bool("RISCV") || !c.Bool("64BIT") {
		t.Error("defaults missing arch options")
	}
	if c.Bool("PFA") {
		t.Error("PFA must default to disabled")
	}
	if c.String("CMDLINE", "") != "console=uart0" {
		t.Errorf("CMDLINE default = %q", c.String("CMDLINE", ""))
	}
}

func TestFragmentPortability(t *testing.T) {
	// §III-B: "configuration fragments make workloads more portable between
	// kernel versions" — a one-line fragment enables PFA without restating
	// the whole config.
	frag, _ := Parse("CONFIG_PFA=y\n")
	merged := RISCVDefault().Merge(frag)
	if !merged.Bool("PFA") {
		t.Error("fragment did not enable PFA")
	}
	if merged.Len() != RISCVDefault().Len() {
		t.Error("fragment should not add/remove unrelated options")
	}
}

// Property: merging is associative — (a·b)·c == a·(b·c).
func TestQuickMergeAssociative(t *testing.T) {
	gen := func(vals []uint8) *Config {
		c := New()
		for i, v := range vals {
			c.Set(string(rune('A'+i%8)), string(rune('0'+v%10)))
		}
		return c
	}
	f := func(a, b, c []uint8) bool {
		ca, cb, cc := gen(a), gen(b), gen(c)
		left := ca.Merge(cb).Merge(cc)
		right := ca.Merge(cb.Merge(cc)) // note: Merge(cb.Merge(cc)) flattens
		return left.Hash() == right.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntFallback(t *testing.T) {
	c := New()
	c.Set("BAD", "notanumber")
	if c.Int("BAD", 7) != 7 {
		t.Error("invalid int should fall back to default")
	}
	if c.Int("MISSING", 9) != 9 {
		t.Error("missing int should fall back to default")
	}
}
