package hostutil

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestHashBytesAndStrings(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Error("different content, same hash")
	}
	if HashBytes([]byte("a")) != HashBytes([]byte("a")) {
		t.Error("same content, different hash")
	}
	// Length framing: ("ab","c") != ("a","bc").
	if HashStrings("ab", "c") == HashStrings("a", "bc") {
		t.Error("HashStrings not framed")
	}
}

func TestHashFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	os.WriteFile(p, []byte("content"), 0o644)
	h1, err := HashFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != HashBytes([]byte("content")) {
		t.Error("HashFile != HashBytes of content")
	}
	if _, err := HashFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestHashDir(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "sub"), 0o755)
	os.WriteFile(filepath.Join(dir, "a"), []byte("1"), 0o644)
	os.WriteFile(filepath.Join(dir, "sub", "b"), []byte("2"), 0o644)
	h1, err := HashDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged -> same hash.
	h2, _ := HashDir(dir)
	if h1 != h2 {
		t.Error("HashDir not deterministic")
	}
	// New file -> different hash.
	os.WriteFile(filepath.Join(dir, "c"), []byte("3"), 0o644)
	h3, _ := HashDir(dir)
	if h3 == h1 {
		t.Error("HashDir insensitive to new file")
	}
	// Missing dir -> stable sentinel, not an error.
	m1, err := HashDir(filepath.Join(dir, "ghost"))
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := HashDir(filepath.Join(dir, "ghost"))
	if m1 != m2 {
		t.Error("missing-dir hash unstable")
	}
	// A file path hashes as the file.
	fh, err := HashDir(filepath.Join(dir, "a"))
	if err != nil || fh != HashBytes([]byte("1")) {
		t.Errorf("file-path HashDir: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "deep", "nested", "f.txt")
	if err := WriteFileAtomic(p, []byte("data"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil || string(data) != "data" {
		t.Errorf("read back: %q %v", data, err)
	}
	info, _ := os.Stat(p)
	if info.Mode().Perm() != 0o600 {
		t.Errorf("mode = %v", info.Mode())
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(filepath.Dir(p))
	if len(entries) != 1 {
		t.Errorf("leftover files: %v", entries)
	}
	// Overwrite works.
	if err := WriteFileAtomic(p, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(p)
	if string(data) != "new" {
		t.Error("overwrite failed")
	}
}

func TestRunHostScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.sh")
	os.WriteFile(script, []byte("#!/bin/sh\necho out-$1\necho err >&2\n"), 0o755)
	res, err := RunHostScript("s.sh extra", dir, "arg2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "out-extra") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if !strings.Contains(res.Stderr, "err") {
		t.Errorf("stderr = %q", res.Stderr)
	}
}

func TestRunHostScriptNonExecutable(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "plain.sh"), []byte("echo via-sh\n"), 0o644)
	res, err := RunHostScript("plain.sh", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "via-sh") {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestRunHostScriptFailure(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "fail.sh"), []byte("#!/bin/sh\necho oops >&2\nexit 3\n"), 0o755)
	res, err := RunHostScript("fail.sh", dir)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "oops") {
		t.Errorf("error should carry stderr: %v", err)
	}
	if res == nil {
		t.Error("result should be returned even on failure")
	}
	if _, err := RunHostScript("", dir); err == nil {
		t.Error("empty script should fail")
	}
}

func TestCopyFileAndDir(t *testing.T) {
	src := t.TempDir()
	os.MkdirAll(filepath.Join(src, "sub"), 0o755)
	os.WriteFile(filepath.Join(src, "exec.sh"), []byte("x"), 0o755)
	os.WriteFile(filepath.Join(src, "sub", "f"), []byte("y"), 0o644)

	dst := filepath.Join(t.TempDir(), "copy")
	if err := CopyDir(src, dst); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dst, "exec.sh"))
	if err != nil || info.Mode().Perm()&0o111 == 0 {
		t.Errorf("exec bit lost: %v %v", info, err)
	}
	data, err := os.ReadFile(filepath.Join(dst, "sub", "f"))
	if err != nil || string(data) != "y" {
		t.Errorf("nested copy: %q %v", data, err)
	}
}

// Concurrent WriteFileAtomic callers racing on one destination must each
// leave the file in a complete state — some writer's full payload, never a
// mix or a truncation. This is the property the content-addressed store
// leans on when parallel builders publish the same blob.
func TestWriteFileAtomicConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "artifact")
	const writers = 16
	payloads := make([][]byte, writers)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 64<<10)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = WriteFileAtomic(dst, payloads[i], 0o644)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	matched := false
	for _, p := range payloads {
		if bytes.Equal(got, p) {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("final file (%d bytes) is not any single writer's payload", len(got))
	}
	// No leaked temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}
