// Package hostutil provides small host-side helpers shared across the
// FireMarshal reproduction: deterministic content hashing, atomic file
// writes, and execution of host scripts (host-init, post-run hooks).
package hostutil

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// HashBytes returns the hex-encoded SHA-256 of data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashStrings hashes a sequence of strings with length framing so that
// ("ab","c") and ("a","bc") hash differently.
func HashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashFile returns the hex-encoded SHA-256 of the file's contents.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("hashing %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashDir hashes a directory tree: relative paths, modes, and contents, in
// sorted order. Missing directories hash to a fixed sentinel so callers can
// treat "not yet created" as a stable state.
func HashDir(dir string) (string, error) {
	info, err := os.Stat(dir)
	if os.IsNotExist(err) {
		return HashStrings("absent-dir", dir), nil
	}
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return HashFile(dir)
	}
	h := sha256.New()
	var paths []string
	err = filepath.Walk(dir, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		if !fi.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	for _, p := range paths {
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return "", err
		}
		content, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%s\x00", rel, HashBytes(content))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DetJitter returns a deterministic pseudo-random duration in [0, max),
// hashed from key and attempt — no wall clock, no global RNG. Retry
// paths use it to de-correlate backoff across jobs/clients while keeping
// every schedule bit-reproducible: the same (key, attempt) always jitters
// by the same amount.
func DetJitter(key string, attempt int, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, key)
	fmt.Fprintf(h, "|%d", attempt)
	return time.Duration(h.Sum64() % uint64(max))
}

// WriteFileAtomic writes data to path via a temporary file and rename, so
// readers never observe a partially written artifact.
func WriteFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ScriptResult captures the outcome of a host script invocation.
type ScriptResult struct {
	Stdout   string
	Stderr   string
	Duration time.Duration
}

// RunHostScript executes a host-side script (host-init or post-run-hook)
// with the given working directory and extra arguments. The script is
// invoked through /bin/sh when it is not executable on its own, matching
// FireMarshal's behaviour of running user-supplied shell scripts.
func RunHostScript(script string, workDir string, args ...string) (*ScriptResult, error) {
	fields := strings.Fields(script)
	if len(fields) == 0 {
		return nil, fmt.Errorf("hostutil: empty script")
	}
	path := fields[0]
	if !filepath.IsAbs(path) {
		path = filepath.Join(workDir, path)
	}
	argv := append(fields[1:], args...)
	var cmd *exec.Cmd
	if fi, err := os.Stat(path); err == nil && fi.Mode()&0o111 != 0 {
		cmd = exec.Command(path, argv...)
	} else {
		cmd = exec.Command("/bin/sh", append([]string{path}, argv...)...)
	}
	cmd.Dir = workDir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	start := time.Now()
	err := cmd.Run()
	res := &ScriptResult{Stdout: stdout.String(), Stderr: stderr.String(), Duration: time.Since(start)}
	if err != nil {
		return res, fmt.Errorf("hostutil: script %q failed: %w (stderr: %s)", script, err, strings.TrimSpace(stderr.String()))
	}
	return res, nil
}

// CopyFile copies src to dst, creating parent directories and preserving the
// source's mode bits.
func CopyFile(src, dst string) error {
	info, err := os.Stat(src)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return WriteFileAtomic(dst, data, info.Mode().Perm())
}

// CopyDir recursively copies a directory tree.
func CopyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		return CopyFile(path, target)
	})
}
