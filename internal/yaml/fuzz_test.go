package yaml

import "testing"

// FuzzParse guards the parser against panics on arbitrary input; anything
// it accepts must be a valid document shape.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"name: w\nbase: b\n",
		"jobs:\n  - name: x\n    command: run\n",
		"a: [1, {b: c}, 'd']\n",
		"run: |\n  line one\n  line two\n",
		"x: >- \n  folded\n",
		"# comment\n---\nkey: value # trailing\n",
		"\"q: k\": v\n",
		"deep:\n  a:\n    b:\n      - 1\n      - c: 2\n",
		"bad: [unclosed\n",
		"\tx: tab\n",
		// Crasher-shaped: deep flow nesting ending in an unterminated quote
		// with a stray escape probes recursion depth and string-scan bounds.
		"a: [[[[[[[[[[[[{'k': [{'q': \"v\\\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Parse([]byte(src))
		if err != nil {
			return
		}
		switch v.(type) {
		case nil, map[string]any, []any, string, float64, bool:
		default:
			t.Fatalf("unexpected document type %T", v)
		}
	})
}
