package yaml

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, src string) any {
	t.Helper()
	v, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return v
}

func TestEmptyDocument(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# just a comment\n", "---\n"} {
		v, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if v != nil {
			t.Errorf("Parse(%q) = %v, want nil", src, v)
		}
	}
}

func TestSimpleMapping(t *testing.T) {
	v := mustParse(t, "name: intspeed\nbase: buildroot\n")
	want := map[string]any{"name": "intspeed", "base": "buildroot"}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %#v, want %#v", v, want)
	}
}

func TestScalarTypes(t *testing.T) {
	v := mustParse(t, `
int: 42
neg: -7
float: 3.5
yes: true
no: false
nothing: null
tilde: ~
str: hello world
quoted: "a: b # c"
single: 'it''s'
`)
	m := v.(map[string]any)
	cases := map[string]any{
		"int": float64(42), "neg": float64(-7), "float": 3.5,
		"yes": true, "no": false, "nothing": nil, "tilde": nil,
		"str": "hello world", "quoted": "a: b # c", "single": "it's",
	}
	for k, want := range cases {
		if got := m[k]; !reflect.DeepEqual(got, want) {
			t.Errorf("key %q: got %#v want %#v", k, got, want)
		}
	}
}

func TestNestedMapping(t *testing.T) {
	v := mustParse(t, `
name: pfa-base
linux:
  source: pfa-linux
  config: pfa-linux.kfrag
`)
	m := v.(map[string]any)
	linux, ok := m["linux"].(map[string]any)
	if !ok {
		t.Fatalf("linux is %T", m["linux"])
	}
	if linux["source"] != "pfa-linux" || linux["config"] != "pfa-linux.kfrag" {
		t.Errorf("nested values wrong: %#v", linux)
	}
}

func TestBlockSequence(t *testing.T) {
	v := mustParse(t, `
outputs:
  - /output
  - /var/log/results
`)
	m := v.(map[string]any)
	want := []any{"/output", "/var/log/results"}
	if !reflect.DeepEqual(m["outputs"], want) {
		t.Errorf("got %#v want %#v", m["outputs"], want)
	}
}

func TestSequenceOfMappings(t *testing.T) {
	v := mustParse(t, `
jobs:
  - name: client
    command: /bench.sh
  - name: server
    base: bare-metal
`)
	jobs := v.(map[string]any)["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	j0 := jobs[0].(map[string]any)
	if j0["name"] != "client" || j0["command"] != "/bench.sh" {
		t.Errorf("job0 = %#v", j0)
	}
	j1 := jobs[1].(map[string]any)
	if j1["name"] != "server" || j1["base"] != "bare-metal" {
		t.Errorf("job1 = %#v", j1)
	}
}

func TestSequenceWithNestedBlocks(t *testing.T) {
	v := mustParse(t, `
jobs:
  - name: client
    linux:
      config: pfa.kfrag
  - name: server
`)
	jobs := v.(map[string]any)["jobs"].([]any)
	linux := jobs[0].(map[string]any)["linux"].(map[string]any)
	if linux["config"] != "pfa.kfrag" {
		t.Errorf("nested linux = %#v", linux)
	}
}

func TestFlowSequence(t *testing.T) {
	v := mustParse(t, `outputs: [/output, "/a b", 3]`)
	want := []any{"/output", "/a b", float64(3)}
	if got := v.(map[string]any)["outputs"]; !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v want %#v", got, want)
	}
}

func TestFlowMapping(t *testing.T) {
	v := mustParse(t, `linux: {source: my-linux, config: frag.kfrag}`)
	linux := v.(map[string]any)["linux"].(map[string]any)
	if linux["source"] != "my-linux" || linux["config"] != "frag.kfrag" {
		t.Errorf("got %#v", linux)
	}
}

func TestNestedFlow(t *testing.T) {
	v := mustParse(t, `x: [[1, 2], {a: b}]`)
	xs := v.(map[string]any)["x"].([]any)
	if !reflect.DeepEqual(xs[0], []any{float64(1), float64(2)}) {
		t.Errorf("xs[0] = %#v", xs[0])
	}
	if !reflect.DeepEqual(xs[1], map[string]any{"a": "b"}) {
		t.Errorf("xs[1] = %#v", xs[1])
	}
}

func TestComments(t *testing.T) {
	v := mustParse(t, `
# leading comment
name: w  # trailing comment
# interior comment
base: br-base
`)
	m := v.(map[string]any)
	if m["name"] != "w" || m["base"] != "br-base" {
		t.Errorf("got %#v", m)
	}
}

func TestHashInsideQuotedString(t *testing.T) {
	v := mustParse(t, `cmd: "echo #notacomment"`)
	if got := v.(map[string]any)["cmd"]; got != "echo #notacomment" {
		t.Errorf("got %q", got)
	}
}

func TestTopLevelSequence(t *testing.T) {
	v := mustParse(t, "- a\n- b\n")
	if !reflect.DeepEqual(v, []any{"a", "b"}) {
		t.Errorf("got %#v", v)
	}
}

func TestNullValueKey(t *testing.T) {
	v := mustParse(t, "name: w\nempty:\nnext: x\n")
	m := v.(map[string]any)
	if m["empty"] != nil {
		t.Errorf("empty = %#v, want nil", m["empty"])
	}
	if m["next"] != "x" {
		t.Errorf("next = %#v", m["next"])
	}
}

func TestDeepNesting(t *testing.T) {
	v := mustParse(t, `
a:
  b:
    c:
      d: 1
`)
	d := v.(map[string]any)["a"].(map[string]any)["b"].(map[string]any)["c"].(map[string]any)["d"]
	if d != float64(1) {
		t.Errorf("d = %#v", d)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\tname: x",              // tab indent
		"name: x\nname: y",       // duplicate key
		"key \"no colon\"",       // missing colon
		"x: [1, 2",               // unterminated flow seq
		"x: {a: 1",               // unterminated flow map
		"x: \"unterminated",      // bad double quote
		"x: 'unterminated",       // bad single quote
		"a: 1\n   b: 2\n  c: 3",  // inconsistent indentation
		"jobs:\n  - a\n    - b:", // bad nesting in sequence
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestListing1Workload(t *testing.T) {
	// The PFA microbenchmark from the paper's Listing 1 expressed as YAML.
	v := mustParse(t, `
name: latency-microbenchmark
base: pfa-base
post-run-hook: extract_csv.py
jobs:
  - name: client
    linux:
      config: pfa.kfrag
  - name: server
    base: bare-metal
    bin: serve
`)
	m := v.(map[string]any)
	if m["name"] != "latency-microbenchmark" || m["base"] != "pfa-base" {
		t.Fatalf("top level wrong: %#v", m)
	}
	jobs := m["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(jobs))
	}
	server := jobs[1].(map[string]any)
	if server["bin"] != "serve" || server["base"] != "bare-metal" {
		t.Errorf("server job = %#v", server)
	}
}

func TestWindowsLineEndings(t *testing.T) {
	v := mustParse(t, "name: w\r\nbase: b\r\n")
	m := v.(map[string]any)
	if m["name"] != "w" || m["base"] != "b" {
		t.Errorf("got %#v", m)
	}
}

func TestQuotedKey(t *testing.T) {
	v := mustParse(t, `"weird: key": value`)
	m := v.(map[string]any)
	if m["weird: key"] != "value" {
		t.Errorf("got %#v", m)
	}
}

func TestSequenceScalarMix(t *testing.T) {
	v := mustParse(t, `
files:
  - [a, b]
  - [c, d]
`)
	files := v.(map[string]any)["files"].([]any)
	if !reflect.DeepEqual(files[0], []any{"a", "b"}) || !reflect.DeepEqual(files[1], []any{"c", "d"}) {
		t.Errorf("got %#v", files)
	}
}

func TestLiteralBlockScalar(t *testing.T) {
	v := mustParse(t, `
name: w
run: |
  echo step one
  echo step two

  # this is guest content, not a YAML comment
  poweroff
base: br-base
`)
	m := v.(map[string]any)
	want := "echo step one\necho step two\n\n# this is guest content, not a YAML comment\npoweroff\n"
	if m["run"] != want {
		t.Errorf("run = %q, want %q", m["run"], want)
	}
	if m["base"] != "br-base" {
		t.Error("key after block scalar lost")
	}
}

func TestLiteralBlockScalarChomped(t *testing.T) {
	v := mustParse(t, "cmd: |-\n  echo x\n  echo y\n")
	if got := v.(map[string]any)["cmd"]; got != "echo x\necho y" {
		t.Errorf("chomped scalar = %q", got)
	}
}

func TestFoldedBlockScalar(t *testing.T) {
	v := mustParse(t, "msg: >\n  one\n  two\n  three\n")
	if got := v.(map[string]any)["msg"]; got != "one two three\n" {
		t.Errorf("folded scalar = %q", got)
	}
}

func TestBlockScalarPreservesDeeperIndent(t *testing.T) {
	v := mustParse(t, "script: |\n  if true; then\n    echo indented\n  fi\n")
	want := "if true; then\n  echo indented\nfi\n"
	if got := v.(map[string]any)["script"]; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEmptyBlockScalar(t *testing.T) {
	v := mustParse(t, "a: |\nb: 2\n")
	m := v.(map[string]any)
	if m["a"] != "" {
		t.Errorf("empty scalar = %q", m["a"])
	}
	if m["b"] != float64(2) {
		t.Error("following key lost")
	}
}

func TestInteriorCommentsAndBlanks(t *testing.T) {
	v := mustParse(t, `
a: 1

# comment between entries
b: 2
jobs:
  - name: x

  - name: y
`)
	m := v.(map[string]any)
	if m["a"] != float64(1) || m["b"] != float64(2) {
		t.Errorf("got %#v", m)
	}
	if jobs := m["jobs"].([]any); len(jobs) != 2 {
		t.Errorf("jobs = %#v", jobs)
	}
}
