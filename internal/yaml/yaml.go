// Package yaml implements the YAML subset used by FireMarshal workload
// descriptions. The paper accepts workloads "in JSON or YAML"; the standard
// library has no YAML support, so this package provides a small,
// deterministic parser covering block mappings, block sequences, nested
// structures, flow scalars, quoted strings, comments, and the scalar types
// that appear in workload files (strings, integers, booleans, null).
//
// Parsed documents use the same dynamic shape as encoding/json
// (map[string]any, []any, string, float64, bool, nil) so that spec loading
// code can treat JSON and YAML documents identically.
package yaml

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse decodes a YAML document into the encoding/json dynamic data model.
func Parse(src []byte) (any, error) {
	p := &parser{}
	lines, err := p.split(string(src))
	if err != nil {
		return nil, err
	}
	start := 0
	for start < len(lines) && lines[start].skip {
		start++
	}
	if start >= len(lines) {
		return nil, nil
	}
	val, next, err := p.parseBlock(lines, start, lines[start].indent)
	if err != nil {
		return nil, err
	}
	for next < len(lines) && lines[next].skip {
		next++
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml: trailing content at line %d", lines[next].num)
	}
	return val, nil
}

// line is one source line. Blank and comment-only lines are kept (block
// scalars need them) but marked skip for structural parsing.
type line struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line number
	skip   bool   // blank or comment-only: invisible to structural parsing
}

type parser struct{}

// split performs lexical preprocessing: records indent depth and marks
// blank/comment lines as skippable (block scalars still see them).
func (p *parser) split(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		trimmed := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		body := trimmed[indent:]
		ln := line{indent: indent, text: body, num: i + 1}
		if body == "" || strings.HasPrefix(body, "#") || body == "---" {
			ln.skip = true
		}
		out = append(out, ln)
	}
	// Trim trailing skip lines so "trailing content" checks stay simple.
	for len(out) > 0 && out[len(out)-1].skip {
		out = out[:len(out)-1]
	}
	return out, nil
}

// parseBlock parses a block node starting at lines[start] whose members are
// indented exactly `indent` columns. It returns the value and the index of
// the first unconsumed line.
func (p *parser) parseBlock(lines []line, start, indent int) (any, int, error) {
	if start >= len(lines) {
		return nil, start, nil
	}
	first := lines[start]
	if strings.HasPrefix(first.text, "\t") {
		return nil, start, fmt.Errorf("yaml: line %d: tab indentation is not allowed", first.num)
	}
	if first.indent != indent {
		return nil, start, fmt.Errorf("yaml: line %d: unexpected indentation %d (want %d)", first.num, first.indent, indent)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(lines, start, indent)
	}
	return p.parseMapping(lines, start, indent)
}

func (p *parser) parseSequence(lines []line, start, indent int) (any, int, error) {
	items := []any{}
	i := start
	for i < len(lines) {
		ln := lines[i]
		if ln.skip {
			i++
			continue
		}
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yaml: line %d: bad indentation in sequence", ln.num)
		}
		if !strings.HasPrefix(ln.text, "-") {
			break
		}
		rest := strings.TrimPrefix(ln.text, "-")
		if rest != "" && !strings.HasPrefix(rest, " ") {
			return nil, i, fmt.Errorf("yaml: line %d: expected space after '-'", ln.num)
		}
		rest = strings.TrimLeft(rest, " ")
		switch {
		case rest == "":
			// Item body is the following, deeper-indented block.
			j := i + 1
			for j < len(lines) && lines[j].skip {
				j++
			}
			if j < len(lines) && lines[j].indent > indent {
				val, next, err := p.parseBlock(lines, j, lines[j].indent)
				if err != nil {
					return nil, i, err
				}
				items = append(items, val)
				i = next
			} else {
				items = append(items, nil)
				i++
			}
		case strings.Contains(rest, ": ") || strings.HasSuffix(rest, ":"):
			// Compact mapping starting on the dash line, e.g. "- name: x".
			// Rewrite as a synthetic mapping block at the dash-content column.
			inner := []line{{indent: ln.indent + (len(ln.text) - len(rest)), text: rest, num: ln.num}}
			j := i + 1
			for j < len(lines) {
				if lines[j].skip {
					inner = append(inner, lines[j])
					j++
					continue
				}
				if lines[j].indent <= indent || (lines[j].indent == indent && strings.HasPrefix(lines[j].text, "-")) {
					break
				}
				inner = append(inner, lines[j])
				j++
			}
			for len(inner) > 0 && inner[len(inner)-1].skip {
				inner = inner[:len(inner)-1]
			}
			val, consumed, err := p.parseBlock(inner, 0, inner[0].indent)
			if err != nil {
				return nil, i, err
			}
			if consumed != len(inner) {
				return nil, i, fmt.Errorf("yaml: line %d: malformed compact mapping item", ln.num)
			}
			items = append(items, val)
			i = j
		default:
			val, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			items = append(items, val)
			i++
		}
	}
	return items, i, nil
}

func (p *parser) parseMapping(lines []line, start, indent int) (any, int, error) {
	m := map[string]any{}
	i := start
	for i < len(lines) {
		ln := lines[i]
		if ln.skip {
			i++
			continue
		}
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yaml: line %d: bad indentation in mapping", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break
		}
		key, rest, err := splitKey(ln.text, ln.num)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		if rest == "|" || rest == "|-" || rest == ">" || rest == ">-" {
			// Literal (|) or folded (>) block scalar.
			val, next := p.parseBlockScalar(lines, i+1, indent, rest)
			m[key] = val
			i = next
			continue
		}
		if rest == "" {
			// Value is a nested block (or null if nothing deeper follows).
			j := i + 1
			for j < len(lines) && lines[j].skip {
				j++
			}
			if j < len(lines) && lines[j].indent > indent {
				val, next, perr := p.parseBlock(lines, j, lines[j].indent)
				if perr != nil {
					return nil, i, perr
				}
				m[key] = val
				i = next
			} else {
				m[key] = nil
				i++
			}
			continue
		}
		val, serr := parseScalar(rest, ln.num)
		if serr != nil {
			return nil, i, serr
		}
		m[key] = val
		i++
	}
	if len(m) == 0 {
		return nil, start, fmt.Errorf("yaml: line %d: expected mapping content", lines[start].num)
	}
	return m, i, nil
}

// splitKey splits "key: value" handling quoted keys containing colons.
func splitKey(text string, num int) (key, rest string, err error) {
	if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
		quote := text[0]
		end := -1
		for j := 1; j < len(text); j++ {
			if text[j] == '\\' && quote == '"' {
				j++
				continue
			}
			if text[j] == quote {
				end = j
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("yaml: line %d: unterminated quoted key", num)
		}
		keyRaw := text[:end+1]
		k, err := parseScalar(keyRaw, num)
		if err != nil {
			return "", "", err
		}
		ks, ok := k.(string)
		if !ok {
			return "", "", fmt.Errorf("yaml: line %d: non-string key", num)
		}
		remainder := strings.TrimLeft(text[end+1:], " ")
		if !strings.HasPrefix(remainder, ":") {
			return "", "", fmt.Errorf("yaml: line %d: expected ':' after key", num)
		}
		return ks, strings.TrimLeft(remainder[1:], " "), nil
	}
	idx := strings.Index(text, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected ':' in mapping entry", num)
	}
	// Require ": " or line-final ":" so URLs inside scalars don't split.
	if idx+1 < len(text) && text[idx+1] != ' ' {
		return "", "", fmt.Errorf("yaml: line %d: expected space after ':'", num)
	}
	return strings.TrimSpace(text[:idx]), strings.TrimLeft(text[idx+1:], " "), nil
}

// parseScalar interprets a flow scalar: quoted strings, flow sequences,
// numbers, booleans, null, and plain strings.
func parseScalar(s string, num int) (any, error) {
	s = strings.TrimSpace(stripTrailingComment(s))
	switch {
	case s == "" || s == "~" || s == "null":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if s[0] == '"' {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: bad double-quoted string %s: %v", num, s, err)
		}
		return unq, nil
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yaml: line %d: unterminated single-quoted string", num)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if s[0] == '[' {
		return parseFlowSeq(s, num)
	}
	if s[0] == '{' {
		return parseFlowMap(s, num)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return float64(n), nil // match encoding/json's numeric model
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// stripTrailingComment removes an unquoted " #..." suffix.
func stripTrailingComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && i > 0 && s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

func parseFlowSeq(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence", num)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	items := []any{}
	if inner == "" {
		return items, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		v, err := parseScalar(part, num)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
	}
	return items, nil
}

func parseFlowMap(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow mapping", num)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := map[string]any{}
	if inner == "" {
		return m, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		idx := strings.Index(part, ":")
		if idx < 0 {
			return nil, fmt.Errorf("yaml: line %d: flow mapping entry %q missing ':'", num, part)
		}
		key := strings.TrimSpace(part[:idx])
		key = strings.Trim(key, `"'`)
		v, err := parseScalar(strings.TrimSpace(part[idx+1:]), num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// splitFlow splits a flow collection body on top-level commas.
func splitFlow(s string, num int) ([]string, error) {
	var parts []string
	depth := 0
	inS, inD := false, false
	last := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			if i == 0 || s[i-1] != '\\' {
				inD = !inD
			}
		case inS || inD:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("yaml: line %d: unbalanced brackets", num)
			}
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[last:i]))
			last = i + 1
		}
	}
	if inS || inD {
		return nil, fmt.Errorf("yaml: line %d: unterminated string in flow collection", num)
	}
	if depth != 0 {
		return nil, fmt.Errorf("yaml: line %d: unbalanced brackets", num)
	}
	parts = append(parts, strings.TrimSpace(s[last:]))
	return parts, nil
}

// parseBlockScalar consumes a literal (|) or folded (>) block scalar whose
// content is indented deeper than parentIndent. The "-" chomping variant
// drops the trailing newline. Interior blank and comment-looking lines are
// content, not structure.
func (p *parser) parseBlockScalar(lines []line, start, parentIndent int, style string) (string, int) {
	// Find the content indent from the first non-blank content line.
	contentIndent := -1
	end := start
	for end < len(lines) {
		ln := lines[end]
		if ln.text == "" {
			end++
			continue
		}
		if contentIndent == -1 {
			if ln.indent <= parentIndent {
				break // empty scalar
			}
			contentIndent = ln.indent
		}
		if ln.indent < contentIndent && ln.text != "" {
			break
		}
		end++
	}
	var content []string
	for i := start; i < end; i++ {
		ln := lines[i]
		if ln.text == "" {
			content = append(content, "")
			continue
		}
		pad := ln.indent - contentIndent
		if pad < 0 {
			pad = 0
		}
		content = append(content, strings.Repeat(" ", pad)+ln.text)
	}
	// Drop trailing blank lines (clip chomping).
	for len(content) > 0 && content[len(content)-1] == "" {
		content = content[:len(content)-1]
	}
	var out string
	if strings.HasPrefix(style, ">") {
		out = strings.Join(content, " ")
	} else {
		out = strings.Join(content, "\n")
	}
	if !strings.HasSuffix(style, "-") && len(content) > 0 {
		out += "\n"
	}
	return out, end
}
