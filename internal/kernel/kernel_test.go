package kernel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/fsimg"
	"firemarshal/internal/kconfig"
)

func frag(t *testing.T, src string) *kconfig.Config {
	t.Helper()
	c, err := kconfig.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultBuild(t *testing.T) {
	img, err := Build(BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != DefaultVersion {
		t.Errorf("version = %q", img.Version)
	}
	if !img.Config.Bool("RISCV") {
		t.Error("default config missing")
	}
	fs, err := img.InitramfsFS()
	if err != nil {
		t.Fatal(err)
	}
	init, err := fs.ReadFile("/init")
	if err != nil {
		t.Fatal("initramfs missing /init")
	}
	if !strings.Contains(string(init), "mount_root") {
		t.Errorf("init script = %q", init)
	}
}

func TestFragmentsMergeInOrder(t *testing.T) {
	img, err := Build(BuildOpts{Fragments: []*kconfig.Config{
		frag(t, "CONFIG_PFA=y\nCONFIG_NR_CPUS=2\n"),
		frag(t, "CONFIG_NR_CPUS=4\n"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Config.Bool("PFA") {
		t.Error("first fragment lost")
	}
	if img.Config.Int("NR_CPUS", 0) != 4 {
		t.Error("later fragment must win")
	}
}

func TestModulesInInitramfs(t *testing.T) {
	dir := t.TempDir()
	modDir := filepath.Join(dir, "pfa-driver")
	os.MkdirAll(modDir, 0o755)
	os.WriteFile(filepath.Join(modDir, "pfa.c"), []byte("int init(void){}"), 0o644)

	img, err := Build(BuildOpts{Modules: map[string]string{"pfa": modDir}})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Modules) != 1 || img.Modules[0].Name != "pfa" {
		t.Fatalf("modules = %+v", img.Modules)
	}
	fs, _ := img.InitramfsFS()
	ko := fs.Lookup("/lib/modules/" + img.Version + "/pfa.ko")
	if ko == nil {
		t.Error("module object missing from initramfs")
	}
	init, _ := fs.ReadFile("/init")
	if !strings.Contains(string(init), "insmod /lib/modules/"+img.Version+"/pfa.ko") {
		t.Errorf("init does not load module: %q", init)
	}
}

func TestMissingModuleSource(t *testing.T) {
	if _, err := Build(BuildOpts{Modules: map[string]string{"ghost": "/nonexistent"}}); err == nil {
		t.Error("expected error for missing module source")
	}
}

func TestCustomSource(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "VERSION"), []byte("5.11.0-pfa\n"), 0o644)
	img, err := Build(BuildOpts{SourceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != "5.11.0-pfa" {
		t.Errorf("version = %q", img.Version)
	}
	if _, err := Build(BuildOpts{SourceDir: t.TempDir()}); err == nil {
		t.Error("expected error for source without VERSION")
	}
}

func TestExtraInitramfsEmbedding(t *testing.T) {
	rootfs := fsimg.New()
	rootfs.WriteFile("/etc/hostname", []byte("nodisk"), 0o644)
	img, err := Build(BuildOpts{ExtraInitramfs: rootfs})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := img.InitramfsFS()
	data, err := fs.ReadFile("/etc/hostname")
	if err != nil || string(data) != "nodisk" {
		t.Errorf("embedded rootfs missing: %v %q", err, data)
	}
	// /init must survive the overlay.
	if fs.Lookup("/init") == nil {
		t.Error("/init lost during embedding")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	modDir := filepath.Join(dir, "m")
	os.MkdirAll(modDir, 0o755)
	os.WriteFile(filepath.Join(modDir, "m.c"), []byte("x"), 0o644)
	img, err := Build(BuildOpts{
		Fragments: []*kconfig.Config{frag(t, "CONFIG_PFA=y\n")},
		Modules:   map[string]string{"m": modDir},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != img.Hash() {
		t.Error("round trip changed hash")
	}
	if !back.Config.Bool("PFA") || back.Version != img.Version || len(back.Modules) != 1 {
		t.Error("round trip lost fields")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("expected magic error")
	}
	if _, err := Decode([]byte("MKI1\xff\xff\xff\xff")); err == nil {
		t.Error("expected truncation error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	mk := func() string {
		img, err := Build(BuildOpts{Fragments: []*kconfig.Config{frag(t, "CONFIG_PFA=y\n")}})
		if err != nil {
			t.Fatal(err)
		}
		return img.Hash()
	}
	if mk() != mk() {
		t.Error("kernel build not deterministic")
	}
}

func TestBootCostVariesWithConfig(t *testing.T) {
	plain, _ := Build(BuildOpts{})
	debug, _ := Build(BuildOpts{Fragments: []*kconfig.Config{frag(t, "CONFIG_DEBUG_KERNEL=y\n")}})
	if debug.BootCostCycles() <= plain.BootCostCycles() {
		t.Error("debug kernel should boot slower")
	}
	// Different versions boot differently (§IV-C).
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "VERSION"), []byte("5.8.0"), 0o644)
	other, _ := Build(BuildOpts{SourceDir: dir})
	if other.BootCostCycles() == plain.BootCostCycles() {
		t.Error("kernel version should affect boot cost")
	}
}
