package sim

import (
	"bytes"
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"firemarshal/internal/asm"
)

// run assembles and executes src bare-metal, returning console output and
// the exit code.
func run(t *testing.T, src string) (string, int64) {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := NewMachine()
	var console bytes.Buffer
	m.Console = &console
	m.SyscallFn = BareSyscalls()
	m.Devices = []Device{&UART{}}
	m.MaxInstrs = 10_000_000
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := RunFunctional(m); err != nil {
		t.Fatalf("run: %v\nconsole: %s", err, console.String())
	}
	return console.String(), m.ExitCode
}

func TestExitCode(t *testing.T) {
	_, code := run(t, `
_start:
    li a0, 42
    li a7, 93
    ecall
`)
	if code != 42 {
		t.Errorf("exit code = %d", code)
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 = 5050.
	_, code := run(t, `
_start:
    li t0, 0      # sum
    li t1, 1      # i
    li t2, 101
loop:
    add t0, t0, t1
    addi t1, t1, 1
    bne t1, t2, loop
    mv a0, t0
    li a7, 93
    ecall
`)
	if code != 5050 {
		t.Errorf("sum = %d, want 5050", code)
	}
}

func TestConsoleWrite(t *testing.T) {
	out, _ := run(t, `
_start:
    la a1, msg
    li a2, 13
    li a0, 1
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
msg: .ascii "hello, world\n"
`)
	if out != "hello, world\n" {
		t.Errorf("console = %q", out)
	}
}

func TestPutInt(t *testing.T) {
	out, _ := run(t, `
_start:
    li a0, -12345
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
`)
	if out != "-12345\n" {
		t.Errorf("out = %q", out)
	}
}

func TestUARTMMIO(t *testing.T) {
	out, _ := run(t, `
.equ UART, 0x54000000
_start:
    li t0, UART
    li t1, 'H'
    sb t1, 0(t0)
    li t1, 'i'
    sb t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
`)
	if out != "Hi" {
		t.Errorf("uart out = %q", out)
	}
}

func TestMemoryOps(t *testing.T) {
	_, code := run(t, `
_start:
    la t0, buf
    li t1, 0x1122334455667788
    sd t1, 0(t0)
    lw t2, 0(t0)      # sign-extended low word 0x55667788
    lwu t3, 4(t0)     # high word 0x11223344
    lb t4, 7(t0)      # 0x11
    lbu t5, 3(t0)     # 0x55
    lh t6, 2(t0)      # 0x5566 positive; bytes 2-3 are 0x66,0x55 -> 0x5566
    # a0 = t3 + t4 + t5 = 0x11223344 + 0x11 + 0x55 = 0x112233aa
    add a0, t3, t4
    add a0, a0, t5
    li t1, 0x112233aa
    bne a0, t1, fail
    li t1, 0x55667788
    bne t2, t1, fail
    li t1, 0x5566
    bne t6, t1, fail
    # negative halfword sign extension
    li t1, 0x8001
    sh t1, 8(t0)
    lh t1, 8(t0)
    li t2, -32767
    bne t1, t2, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
.data
buf: .space 16
`)
	if code != 0 {
		t.Errorf("memory ops failed (exit %d)", code)
	}
}

func TestUnalignedAccess(t *testing.T) {
	_, code := run(t, `
_start:
    la t0, buf
    li t1, 0xdeadbeefcafebabe
    sd t1, 3(t0)      # unaligned store
    ld t2, 3(t0)
    bne t1, t2, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
.data
buf: .space 32
`)
	if code != 0 {
		t.Error("unaligned access round trip failed")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := NewMachine()
	m.Mem.Write(0xffe, 8, 0x1122334455667788)
	if got := m.Mem.Read(0xffe, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestFunctionCall(t *testing.T) {
	_, code := run(t, `
_start:
    li sp, 0x8000000
    li a0, 10
    call fib
    li a7, 93
    ecall

# fib(n) iterative
fib:
    li t0, 0
    li t1, 1
    beqz a0, fib_zero
floop:
    add t2, t0, t1
    mv t0, t1
    mv t1, t2
    addi a0, a0, -1
    bnez a0, floop
    mv a0, t0
    ret
fib_zero:
    li a0, 0
    ret
`)
	if code != 55 {
		t.Errorf("fib(10) = %d, want 55", code)
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	_, code := run(t, `
_start:
    # div by zero -> -1
    li t0, 7
    li t1, 0
    div t2, t0, t1
    li t3, -1
    bne t2, t3, fail
    # rem by zero -> dividend
    rem t2, t0, t1
    bne t2, t0, fail
    # overflow: INT64_MIN / -1 -> INT64_MIN
    li t0, -0x8000000000000000
    li t1, -1
    div t2, t0, t1
    bne t2, t0, fail
    rem t2, t0, t1
    bnez t2, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
`)
	if code != 0 {
		t.Error("div/rem edge cases failed")
	}
}

func TestCSRCounters(t *testing.T) {
	out, _ := run(t, `
_start:
    rdcycle t0
    nop
    nop
    nop
    rdcycle t1
    sub a0, t1, t0
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`)
	// Functional sim: 1 cycle per instruction, 4 instructions between reads.
	if strings.TrimSpace(out) != "4" {
		t.Errorf("cycle delta = %q, want 4", out)
	}
}

func TestTrapOnBadInstruction(t *testing.T) {
	m := NewMachine()
	m.Mem.Write(0x1000, 4, 0) // all-zero word is an illegal instruction
	m.PC = 0x1000
	if _, err := m.Step(); err == nil {
		t.Error("expected trap on illegal instruction")
	}
}

func TestTrapOnMissingSyscallHandler(t *testing.T) {
	m := NewMachine()
	m.Mem.Write(0x1000, 4, 0x00000073) // ecall
	m.PC = 0x1000
	if _, err := m.Step(); err == nil {
		t.Error("expected trap for missing handler")
	}
}

func TestInstrLimit(t *testing.T) {
	exe, _ := asm.Assemble("_start:\n    j _start\n", asm.Options{})
	m := NewMachine()
	m.SyscallFn = BareSyscalls()
	m.MaxInstrs = 1000
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := RunFunctional(m); err == nil {
		t.Error("expected instruction-limit trap for infinite loop")
	}
}

func TestX0AlwaysZero(t *testing.T) {
	_, code := run(t, `
_start:
    li t0, 99
    add zero, t0, t0
    mv a0, zero
    li a7, 93
    ecall
`)
	if code != 0 {
		t.Errorf("x0 was written: %d", code)
	}
}

// Property: MULH/MULHU match 128-bit big.Int arithmetic.
func TestQuickMulh(t *testing.T) {
	f := func(a, b int64) bool {
		gotS := mulh(a, b)
		gotU := mulhu(uint64(a), uint64(b))
		s := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		s.Rsh(s, 64)
		wantS := uint64(s.Int64())
		u := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
		u.Rsh(u, 64)
		wantU := u.Uint64()
		return gotS == wantS && gotU == wantU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: memory Write/Read round-trips any value at any address/size.
func TestQuickMemory(t *testing.T) {
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr &= 0xffffff
		size := []int{1, 2, 4, 8}[szSel%4]
		m := NewMemory()
		m.Write(addr, size, v)
		got := m.Read(addr, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAndClone(t *testing.T) {
	m := NewMachine()
	m.Regs[5] = 123
	m.PC = 0x1000
	snap := m.Snap()
	if snap.Regs[5] != 123 || snap.PC != 0x1000 {
		t.Error("snapshot wrong")
	}
	m.Mem.Write(0x2000, 8, 42)
	clone := m.Mem.Clone()
	m.Mem.Write(0x2000, 8, 99)
	if clone.Read(0x2000, 8) != 42 {
		t.Error("memory clone not deep")
	}
}

func TestReadString(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x100, []byte("hello\x00world"))
	s, err := m.ReadString(0x100, 64)
	if err != nil || s != "hello" {
		t.Errorf("ReadString = %q, %v", s, err)
	}
	if _, err := m.ReadString(0x106, 3); err == nil {
		t.Error("expected unterminated-string error")
	}
}

func TestEbreakHalts(t *testing.T) {
	m := NewMachine()
	m.Mem.Write(0x1000, 4, 0x00100073) // ebreak
	m.PC = 0x1000
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitCode != -1 {
		t.Errorf("ebreak: halted=%v exit=%d", m.Halted, m.ExitCode)
	}
	if _, err := m.Step(); err == nil {
		t.Error("stepping a halted machine must trap")
	}
}

func TestUnknownCSRTraps(t *testing.T) {
	exe, _ := asm.Assemble("_start:\n    csrr a0, 0x123\n", asm.Options{})
	m := NewMachine()
	m.SyscallFn = BareSyscalls()
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := m.Step(); err == nil {
		t.Error("unknown CSR should trap")
	}
}

func TestWriteLengthLimit(t *testing.T) {
	// A hostile write syscall length is rejected rather than allocating.
	exe, _ := asm.Assemble(`
_start:
    li a0, 1
    li a1, 0
    li a2, 0x200000
    li a7, 64
    ecall
`, asm.Options{})
	m := NewMachine()
	m.SyscallFn = BareSyscalls()
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := RunFunctional(m); err == nil {
		t.Error("oversized write should trap")
	}
}

func TestFormatRegs(t *testing.T) {
	m := NewMachine()
	m.Regs[10] = 0xdead
	s := FormatRegs(m)
	if !strings.Contains(s, "000000000000dead") {
		t.Errorf("FormatRegs missing value:\n%s", s)
	}
}

func TestTraceOutput(t *testing.T) {
	exe, _ := asm.Assemble("_start:\n    addi a0, zero, 1\n    li a7, 93\n    ecall\n", asm.Options{})
	m := NewMachine()
	var trace bytes.Buffer
	m.Trace = &trace
	m.SyscallFn = BareSyscalls()
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := RunFunctional(m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "addi a0, zero, 1") {
		t.Errorf("trace = %q", trace.String())
	}
}

// errDevice fails loads, exercising device error propagation.
type errDevice struct{}

func (errDevice) Name() string           { return "err" }
func (errDevice) Contains(a uint64) bool { return a == 0x60000000 }
func (errDevice) Load(m *Machine, a uint64, s int) (uint64, uint64, error) {
	return 0, 0, &ErrTrap{PC: a, Msg: "device load error"}
}
func (errDevice) Store(m *Machine, a uint64, s int, v uint64) (uint64, error) {
	return 0, &ErrTrap{PC: a, Msg: "device store error"}
}

func TestDeviceErrorsPropagate(t *testing.T) {
	for _, srcOp := range []string{"ld t0, 0(t1)", "sd t0, 0(t1)"} {
		exe, _ := asm.Assemble("_start:\n    li t1, 0x60000000\n    "+srcOp+"\n", asm.Options{})
		m := NewMachine()
		m.Devices = []Device{errDevice{}}
		m.SyscallFn = BareSyscalls()
		m.LoadExecutable(exe, DefaultStackTop)
		if _, err := RunFunctional(m); err == nil {
			t.Errorf("%s: device error should propagate", srcOp)
		}
	}
}
