// Package sim implements the guest machine shared by the functional
// simulator (internal/sim/funcsim, the QEMU/Spike role) and the cycle-exact
// simulator (internal/sim/rtlsim, the FireSim role). The machine executes
// RV64IM-subset instructions over sparse memory with memory-mapped devices
// and an environment-provided syscall handler. Each Step returns an Event
// describing what happened microarchitecturally so timing models can charge
// cycles without re-interpreting the instruction.
package sim

import (
	"errors"
	"fmt"
	"io"

	"firemarshal/internal/isa"
	"firemarshal/internal/obs"
)

// ErrStopped reports a run aborted through the machine's Stop channel
// (launcher timeout or cancellation), as opposed to a guest halt or trap.
var ErrStopped = errors.New("sim: stopped")

// Device is a memory-mapped peripheral.
type Device interface {
	// Name identifies the device in traces and errors.
	Name() string
	// Contains reports whether the device claims the address.
	Contains(addr uint64) bool
	// Load reads size bytes of device state. extra is additional cycles the
	// access costs beyond a regular uncached access (cycle-exact mode only).
	Load(m *Machine, addr uint64, size int) (val uint64, extra uint64, err error)
	// Store writes size bytes of device state.
	Store(m *Machine, addr uint64, size int, val uint64) (extra uint64, err error)
}

// MemHook observes data memory accesses before they happen. The Page Fault
// Accelerator and the software-paging baseline install hooks to model
// remote-memory residency.
type MemHook interface {
	// BeforeAccess may service a fault for addr. It returns extra cycles the
	// access costs (cycle-exact mode only).
	BeforeAccess(m *Machine, addr uint64, store bool) (extra uint64, err error)
}

// Event describes one executed instruction for timing models.
type Event struct {
	PC     uint64
	Instr  isa.Instr
	NextPC uint64
	// Taken is set for conditional branches that were taken.
	Taken bool
	// MemAddr/MemSize are valid for loads and stores.
	MemAddr uint64
	MemSize int
	// MMIO is set when the access hit a device rather than RAM.
	MMIO bool
	// Extra is additional cycles charged by devices or memory hooks.
	Extra uint64
	// Syscall is set when the instruction was an ECALL.
	Syscall bool
}

// Machine is one simulated hart plus its memory and devices.
type Machine struct {
	Regs [32]uint64
	PC   uint64
	Mem  *Memory

	// Devices are checked in order for MMIO claims.
	Devices []Device
	// Hooks observe data accesses (remote-memory models).
	Hooks []MemHook
	// SyscallFn handles ECALL. The handler may halt the machine, modify
	// registers, or return an error to abort simulation.
	SyscallFn func(m *Machine) error
	// Console receives guest console output (the serial port log).
	Console io.Writer

	// Now is the current cycle, maintained by the driving simulator and
	// visible to the guest through rdcycle. Functional simulation advances
	// it by one per instruction.
	Now uint64
	// Instret counts retired instructions.
	Instret uint64
	// HartID is exposed through the mhartid CSR.
	HartID uint64

	// Halted is set when the guest exits; ExitCode holds its status.
	Halted   bool
	ExitCode int64

	// MaxInstrs aborts runaway programs when nonzero.
	MaxInstrs uint64

	// Stop, when non-nil, is a cooperative kill switch: the run loops poll
	// it at coarse intervals (chunk boundaries on the fast path, every few
	// thousand instructions on the reference path) and return ErrStopped
	// once it is closed. The parallel launcher wires a job's ctx.Done()
	// here so per-job timeouts and Ctrl-C kill a simulation without
	// per-instruction overhead and without stalling sibling jobs.
	Stop <-chan struct{}

	// Trace, when set, receives one line per retired instruction (the
	// role of spike -l). Tracing is slow; leave nil in normal runs.
	Trace io.Writer

	// TraceOff disables the trace compiler: the fast loop never counts
	// hotness, never compiles superblocks, and never dispatches them.
	// The verification farm uses it to run the predecoded fast loop as
	// its own execution tier, distinct from the trace-compiled tier.
	TraceOff bool

	// TamperFn, when set, transforms each result before register writeback
	// — deterministic fault injection for post-tapeout bring-up triage
	// (the §VI use case of running identical suites against potentially
	// faulty silicon).
	TamperFn func(pc uint64, op isa.Op, rd uint64) uint64

	// CkptEvery/CkptFn install deterministic checkpointing: when both are
	// set, every run loop — the fast path, the reference path, and the
	// batched cycle-exact path — arranges to pause at exact multiples of
	// CkptEvery retired instructions and invoke CkptFn there, with all
	// architectural state published. A snapshot at instruction N is
	// therefore identical no matter which loop produced it.
	CkptEvery uint64
	CkptFn    func(m *Machine) error
	// lastCkpt is the Instret at the last snapshot (or restore), so each
	// boundary fires at most once.
	lastCkpt uint64

	// instrShard/cycleShard, when attached (AttachObs), receive
	// retired-instruction and cycle deltas at fast-loop chunk boundaries
	// and run exits — one uncontended atomic add per ~1Mi instructions,
	// never per instruction. obsInstret/obsNow track what has already
	// been flushed so repeated flushes are idempotent.
	instrShard, cycleShard *obs.Shard
	obsInstret, obsNow     uint64

	// segs holds every loaded segment predecoded into dense instruction
	// form; curSeg caches the segment of the last fetch (a fetch TLB).
	segs   []segCode
	curSeg *segCode
	// codeMin/codeMax bound every word whose decoded form is cached
	// anywhere (predecoded segment entries or decode-cache entries);
	// predLo/predHi widen that by the maximum store size so the store path
	// can detect writes into cached code with one comparison. Stores to
	// never-decoded data (the common case) skip invalidation entirely.
	codeMin, codeMax uint64
	predLo, predHi   uint64

	// hotTab counts executions of backward-branch targets; traceTab is
	// the direct-mapped superblock cache compiled from them (trace.go).
	// Both are pure caches over the predecoded segments: reset on load
	// and restore, dropped by invalidateCode, never serialized.
	hotTab   *[hotTabSize]hotEntry
	traceTab *[traceTabSize]*trace
	// Machine-lifetime trace-cache stats. tracesBuilt/traceHits/
	// traceInvals flush as deltas to the attached shards
	// (AttachTraceObs); traceInstrs feeds the coverage gauge (fraction
	// of all retired instructions that retired inside a trace).
	tracesBuilt, traceHits, traceInvals, traceInstrs uint64
	traceBuiltShard, traceHitShard, traceInvalShard  *obs.Shard
	traceCovGauge                                    *obs.Gauge
	obsTracesBuilt, obsTraceHits, obsTraceInvals     uint64
	// fusionSeen accumulates the fusion-kind masks of every dispatched
	// trace — one OR per dispatch, read by TraceFusionKinds for the
	// verification farm's coverage model.
	fusionSeen uint32

	// dcache is a small direct-mapped decode cache for code executed
	// outside the predecoded segments (runtime-written code, misaligned
	// fetches). Unlike a map it is self-bounded. Allocated on first miss.
	dcache *[dcacheSize]dcacheEntry

	// Sorted device address-range index: devRanges holds devices that
	// expose an AddrRange (sorted by base, disjoint), devSlow the rest.
	// devLo/devHi bound every claimed address so the common non-MMIO
	// access is a single comparison. devN tracks len(Devices) at index
	// build time so appends force a rebuild.
	devRanges []devRange
	devSlow   []Device
	devLo     uint64
	devHi     uint64
	devN      int
}

// AttachObs binds the machine's instruction/cycle metric shards. The
// baseline is the machine's current counts, so work already on the books
// — a restored checkpoint's Instret, a prior exec on the same machine —
// is never re-reported as newly simulated.
func (m *Machine) AttachObs(instrs, cycles *obs.Shard) {
	m.instrShard, m.cycleShard = instrs, cycles
	m.obsInstret, m.obsNow = m.Instret, m.Now
}

// AttachTraceObs binds the trace-cache metric shards and coverage gauge
// to reg (nil resolves to obs.Default). Like AttachObs, the baseline is
// the machine's current counts so prior execs never re-report.
func (m *Machine) AttachTraceObs(reg *obs.Registry) {
	m.traceBuiltShard = reg.Counter("sim_traces_built").Shard()
	m.traceHitShard = reg.Counter("sim_trace_dispatch_hits").Shard()
	m.traceInvalShard = reg.Counter("sim_trace_invalidations").Shard()
	m.traceCovGauge = reg.Gauge("sim_trace_coverage")
	m.obsTracesBuilt, m.obsTraceHits, m.obsTraceInvals = m.tracesBuilt, m.traceHits, m.traceInvals
}

// flushObs publishes the instruction/cycle delta since the last flush to
// the attached shards. The run loops call it at chunk boundaries and on
// exit; it is delta-based, so extra calls are harmless, and with nothing
// attached it costs a few compares.
func (m *Machine) flushObs() {
	if m.instrShard == nil && m.cycleShard == nil && m.traceHitShard == nil {
		return
	}
	m.instrShard.Add(m.Instret - m.obsInstret)
	m.cycleShard.Add(m.Now - m.obsNow)
	m.obsInstret, m.obsNow = m.Instret, m.Now
	if m.traceHitShard != nil {
		m.traceBuiltShard.Add(m.tracesBuilt - m.obsTracesBuilt)
		m.traceHitShard.Add(m.traceHits - m.obsTraceHits)
		m.traceInvalShard.Add(m.traceInvals - m.obsTraceInvals)
		m.obsTracesBuilt, m.obsTraceHits, m.obsTraceInvals = m.tracesBuilt, m.traceHits, m.traceInvals
		if m.Instret != 0 {
			m.traceCovGauge.Set(float64(m.traceInstrs) / float64(m.Instret))
		}
	}
}

// ckptDist returns how many instructions may retire before the next
// checkpoint boundary (effectively unbounded when checkpointing is off).
// Run loops clamp their budgets with it so they stop exactly on the
// boundary. It assumes the current boundary, if any, was already handled
// by maybeCheckpoint.
func (m *Machine) ckptDist() uint64 {
	if m.CkptFn == nil || m.CkptEvery == 0 {
		return ^uint64(0)
	}
	return m.CkptEvery - m.Instret%m.CkptEvery
}

// maybeCheckpoint invokes CkptFn when execution sits exactly on a
// checkpoint boundary that has not fired yet. Halted machines are never
// snapshotted — the job is finishing and its terminal record supersedes
// any checkpoint.
func (m *Machine) maybeCheckpoint() error {
	if m.CkptFn == nil || m.CkptEvery == 0 || m.Halted {
		return nil
	}
	if m.Instret == 0 || m.Instret%m.CkptEvery != 0 || m.Instret == m.lastCkpt {
		return nil
	}
	m.lastCkpt = m.Instret
	return m.CkptFn(m)
}

// Interrupted reports whether the Stop channel is closed. It never
// blocks; with no Stop channel installed it is a single nil check.
func (m *Machine) Interrupted() bool {
	if m.Stop == nil {
		return false
	}
	select {
	case <-m.Stop:
		return true
	default:
		return false
	}
}

// segCode is one predecoded segment: instrs[i] decodes the word at
// base+4i. Words that fail to decode (data, invalidated code) are stored
// as the zero Instr, whose Op is OpInvalid. uops mirrors instrs in the
// 8-byte pre-split form the fast loop fetches with a single load.
type segCode struct {
	base   uint64
	limit  uint64 // base + byte length, rounded down to a word multiple
	instrs []isa.Instr
	uops   []uop
}

// uop is a predecoded instruction packed for the fast loop: the operand
// fields pre-split into bytes and the immediate narrowed to int32 (every
// RV64IM immediate is 32-bit representable; anything that is not stays on
// the slow path as a zero uop). 8 bytes total, so fetch is one load.
type uop struct {
	Op       isa.Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int32
}

// dcacheSize bounds the fallback decode cache (entries, power of two).
const dcacheSize = 1024

// dcacheEntry tags a decoded instruction with pc+1 (zero = invalid).
type dcacheEntry struct {
	tag uint64
	in  isa.Instr
}

// devRange is one entry of the sorted device index.
type devRange struct {
	lo, hi uint64
	d      Device
}

// AddrRanger is an optional Device extension: devices that claim one fixed
// address range expose it so the machine can index them. Devices that do
// not implement it are checked with a linear Contains scan, and their
// presence disables the one-comparison non-MMIO fast path.
type AddrRanger interface {
	AddrRange() (lo, hi uint64)
}

// NewMachine returns a machine with empty memory.
func NewMachine() *Machine {
	return &Machine{
		Mem:     NewMemory(),
		Console: io.Discard,
		devN:    -1,
	}
}

// LoadExecutable copies segments into memory and points the PC at the entry.
// The stack pointer is initialized just below stackTop. Every segment is
// predecoded for fast fetch; stores into predecoded ranges invalidate the
// affected words so fetch stays coherent with memory.
func (m *Machine) LoadExecutable(exe *isa.Executable, stackTop uint64) {
	for _, seg := range exe.Segments {
		m.Mem.WriteBytes(seg.Addr, seg.Data)
	}
	m.PC = exe.Entry
	if stackTop != 0 {
		m.Regs[2] = stackTop
	}
	m.dcache = nil
	m.resetTraces()
	m.segs = m.segs[:0]
	m.curSeg = nil
	m.codeMin, m.codeMax = ^uint64(0), 0
	for _, seg := range exe.Segments {
		n := len(seg.Data) / 4
		if n == 0 {
			continue
		}
		sc := segCode{
			base:   seg.Addr,
			limit:  seg.Addr + uint64(n*4),
			instrs: make([]isa.Instr, n),
			uops:   make([]uop, n),
		}
		for i := 0; i < n; i++ {
			raw := uint32(seg.Data[i*4]) | uint32(seg.Data[i*4+1])<<8 |
				uint32(seg.Data[i*4+2])<<16 | uint32(seg.Data[i*4+3])<<24
			if in, err := isa.Decode(raw); err == nil {
				sc.instrs[i] = in
				sc.uops[i] = packUop(in)
				w := sc.base + uint64(i*4)
				if w < m.codeMin {
					m.codeMin = w
				}
				if w+4 > m.codeMax {
					m.codeMax = w + 4
				}
			}
		}
		m.segs = append(m.segs, sc)
	}
	if len(m.segs) > 0 {
		m.curSeg = &m.segs[0]
	}
	m.updateCodeGuard()
	m.indexDevices()
}

// packUop narrows a decoded instruction to the fast loop's 8-byte form.
// The rare immediate outside int32 range stays a zero uop (slow path).
func packUop(in isa.Instr) uop {
	if int64(int32(in.Imm)) != in.Imm {
		return uop{}
	}
	return uop{Op: in.Op, Rd: in.Rd, Rs1: in.Rs1, Rs2: in.Rs2, Imm: int32(in.Imm)}
}

// fetch returns the decoded instruction at pc: predecoded segment first,
// then the bounded decode cache, then a decode from memory.
func (m *Machine) fetch(pc uint64) (isa.Instr, error) {
	if s := m.curSeg; s != nil && pc-s.base < s.limit-s.base && pc&3 == 0 {
		if in := s.instrs[(pc-s.base)>>2]; in.Op != isa.OpInvalid {
			return in, nil
		}
	}
	return m.fetchSlow(pc)
}

// fetchSlow is the out-of-line remainder of fetch: segment switch, decode
// cache, and finally a fresh decode from memory.
func (m *Machine) fetchSlow(pc uint64) (isa.Instr, error) {
	if pc&3 == 0 && pc-m.predLo < m.predHi-m.predLo {
		for i := range m.segs {
			s := &m.segs[i]
			if pc-s.base < s.limit-s.base {
				if in := s.instrs[(pc-s.base)>>2]; in.Op != isa.OpInvalid {
					m.curSeg = s
					return in, nil
				}
				break
			}
		}
	}
	if m.dcache != nil {
		if e := &m.dcache[(pc>>2)&(dcacheSize-1)]; e.tag == pc+1 {
			return e.in, nil
		}
	}
	raw := uint32(m.Mem.Read(pc, 4))
	in, err := isa.Decode(raw)
	if err != nil {
		return in, m.trapf("%v", err)
	}
	if m.dcache == nil {
		m.dcache = new([dcacheSize]dcacheEntry)
	}
	m.dcache[(pc>>2)&(dcacheSize-1)] = dcacheEntry{tag: pc + 1, in: in}
	if pc < m.codeMin || pc+4 > m.codeMax {
		if pc < m.codeMin {
			m.codeMin = pc
		}
		if pc+4 > m.codeMax {
			m.codeMax = pc + 4
		}
		m.updateCodeGuard()
	}
	return in, nil
}

// updateCodeGuard derives the store-side invalidation bound from the cached
// code range. A store of up to 8 bytes starting 7 bytes below codeMin can
// still overlap it, so the guard widens by that much; invalidateCode
// re-checks precise overlap.
func (m *Machine) updateCodeGuard() {
	if m.codeMax == 0 || m.codeMin >= m.codeMax {
		m.predLo, m.predHi = 0, 0
		return
	}
	lo := m.codeMin
	if lo >= 7 {
		lo -= 7
	} else {
		lo = 0
	}
	m.predLo, m.predHi = lo, m.codeMax
}

// invalidateCode drops predecoded/cached instructions overlapping a store
// of size bytes at addr, so the next fetch re-decodes from memory. Callers
// check the [predLo, predHi) bound first; this is the rare in-bounds path.
func (m *Machine) invalidateCode(addr uint64, size int) {
	first := addr &^ 3
	last := (addr + uint64(size) - 1) &^ 3
	m.invalidateTraces(first, last+4)
	for i := range m.segs {
		s := &m.segs[i]
		if last < s.base || first >= s.limit {
			continue
		}
		lo, hi := first, last
		if lo < s.base {
			lo = s.base
		}
		if hi >= s.limit {
			hi = s.limit - 4
		}
		for w := lo; w <= hi; w += 4 {
			s.instrs[(w-s.base)>>2] = isa.Instr{}
			s.uops[(w-s.base)>>2] = uop{}
		}
	}
	if m.dcache != nil {
		for w := first; w <= last; w += 4 {
			if e := &m.dcache[(w>>2)&(dcacheSize-1)]; e.tag == w+1 {
				*e = dcacheEntry{}
			}
		}
	}
}

// indexDevices (re)builds the sorted device range index. It runs at load
// time and again whenever len(Devices) changes between lookups.
func (m *Machine) indexDevices() {
	m.devRanges = m.devRanges[:0]
	m.devSlow = m.devSlow[:0]
	m.devLo, m.devHi = ^uint64(0), 0
	m.devN = len(m.Devices)
	for _, d := range m.Devices {
		r, ok := d.(AddrRanger)
		if !ok {
			m.devSlow = append(m.devSlow, d)
			continue
		}
		lo, hi := r.AddrRange()
		m.devRanges = append(m.devRanges, devRange{lo: lo, hi: hi, d: d})
	}
	// Insertion sort by base: device counts are tiny.
	for i := 1; i < len(m.devRanges); i++ {
		for j := i; j > 0 && m.devRanges[j].lo < m.devRanges[j-1].lo; j-- {
			m.devRanges[j], m.devRanges[j-1] = m.devRanges[j-1], m.devRanges[j]
		}
	}
	// Overlapping ranges would break first-match-wins ordering; fall back
	// to a plain scan in Devices order if any two ranges overlap.
	for i := 1; i < len(m.devRanges); i++ {
		if m.devRanges[i].lo < m.devRanges[i-1].hi {
			m.devRanges = m.devRanges[:0]
			m.devSlow = append(m.devSlow[:0], m.Devices...)
			break
		}
	}
	for _, r := range m.devRanges {
		if r.lo < m.devLo {
			m.devLo = r.lo
		}
		if r.hi > m.devHi {
			m.devHi = r.hi
		}
	}
	if len(m.devSlow) > 0 {
		// Unindexable devices can claim anything: disable the bound skip.
		m.devLo, m.devHi = 0, ^uint64(0)
	}
}

// ErrTrap is returned for guest faults (bad fetch, bad instruction).
type ErrTrap struct {
	PC  uint64
	Msg string
}

func (e *ErrTrap) Error() string { return fmt.Sprintf("sim: trap at pc=%#x: %s", e.PC, e.Msg) }

func (m *Machine) trapf(format string, args ...any) error {
	return &ErrTrap{PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) device(addr uint64) Device {
	if len(m.Devices) != m.devN {
		m.indexDevices()
	}
	if addr-m.devLo >= m.devHi-m.devLo {
		return nil
	}
	for i := range m.devRanges {
		r := &m.devRanges[i]
		if addr < r.lo {
			break
		}
		if addr < r.hi {
			return r.d
		}
	}
	for _, d := range m.devSlow {
		if d.Contains(addr) {
			return d
		}
	}
	return nil
}

// isMMIO reports whether addr is claimed by a device — the fast loop's
// one-comparison pre-check (conservative when unindexable devices exist).
func (m *Machine) isMMIO(addr uint64) bool {
	return addr-m.devLo < m.devHi-m.devLo
}

// Step executes one instruction. It is the single execution path used by
// every simulator, which is what guarantees functional equivalence between
// simulation levels.
func (m *Machine) Step() (Event, error) {
	var ev Event
	err := m.StepInto(&ev)
	return ev, err
}

// StepInto is the allocation-free Step variant used by simulator hot
// loops: the event is written into *ev instead of returned by value.
func (m *Machine) StepInto(ev *Event) error {
	*ev = Event{PC: m.PC}
	if m.Halted {
		return m.trapf("step on halted machine")
	}
	if m.MaxInstrs > 0 && m.Instret >= m.MaxInstrs {
		return m.trapf("instruction limit %d exceeded", m.MaxInstrs)
	}

	// Fetch, with the predecoded-segment hit path inlined (m.fetch is just
	// past the inlining budget, and this runs once per instruction).
	var in isa.Instr
	if s := m.curSeg; s != nil && m.PC-s.base < s.limit-s.base && m.PC&3 == 0 {
		in = s.instrs[(m.PC-s.base)>>2]
	}
	if in.Op == isa.OpInvalid {
		var err error
		in, err = m.fetchSlow(m.PC)
		if err != nil {
			return err
		}
	}
	ev.Instr = in
	next := m.PC + 4

	rs1 := m.Regs[in.Rs1]
	rs2 := m.Regs[in.Rs2]
	var rd uint64
	writeRd := true

	switch in.Op {
	case isa.OpADD:
		rd = rs1 + rs2
	case isa.OpSUB:
		rd = rs1 - rs2
	case isa.OpSLL:
		rd = rs1 << (rs2 & 63)
	case isa.OpSLT:
		if int64(rs1) < int64(rs2) {
			rd = 1
		}
	case isa.OpSLTU:
		if rs1 < rs2 {
			rd = 1
		}
	case isa.OpXOR:
		rd = rs1 ^ rs2
	case isa.OpSRL:
		rd = rs1 >> (rs2 & 63)
	case isa.OpSRA:
		rd = uint64(int64(rs1) >> (rs2 & 63))
	case isa.OpOR:
		rd = rs1 | rs2
	case isa.OpAND:
		rd = rs1 & rs2
	case isa.OpMUL:
		rd = rs1 * rs2
	case isa.OpMULH:
		rd = mulh(int64(rs1), int64(rs2))
	case isa.OpMULHU:
		rd = mulhu(rs1, rs2)
	case isa.OpDIV:
		rd = div(int64(rs1), int64(rs2))
	case isa.OpDIVU:
		if rs2 == 0 {
			rd = ^uint64(0)
		} else {
			rd = rs1 / rs2
		}
	case isa.OpREM:
		rd = rem(int64(rs1), int64(rs2))
	case isa.OpREMU:
		if rs2 == 0 {
			rd = rs1
		} else {
			rd = rs1 % rs2
		}
	case isa.OpADDI:
		rd = rs1 + uint64(in.Imm)
	case isa.OpSLTI:
		if int64(rs1) < in.Imm {
			rd = 1
		}
	case isa.OpSLTIU:
		if rs1 < uint64(in.Imm) {
			rd = 1
		}
	case isa.OpXORI:
		rd = rs1 ^ uint64(in.Imm)
	case isa.OpORI:
		rd = rs1 | uint64(in.Imm)
	case isa.OpANDI:
		rd = rs1 & uint64(in.Imm)
	case isa.OpSLLI:
		rd = rs1 << uint64(in.Imm)
	case isa.OpSRLI:
		rd = rs1 >> uint64(in.Imm)
	case isa.OpSRAI:
		rd = uint64(int64(rs1) >> uint64(in.Imm))
	case isa.OpLUI:
		rd = uint64(in.Imm)
	case isa.OpAUIPC:
		rd = m.PC + uint64(in.Imm)
	case isa.OpJAL:
		rd = next
		next = m.PC + uint64(in.Imm)
	case isa.OpJALR:
		rd = next
		next = (rs1 + uint64(in.Imm)) &^ 1
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		writeRd = false
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = rs1 == rs2
		case isa.OpBNE:
			taken = rs1 != rs2
		case isa.OpBLT:
			taken = int64(rs1) < int64(rs2)
		case isa.OpBGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.OpBLTU:
			taken = rs1 < rs2
		case isa.OpBGEU:
			taken = rs1 >= rs2
		}
		ev.Taken = taken
		if taken {
			next = m.PC + uint64(in.Imm)
		}
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU:
		addr := rs1 + uint64(in.Imm)
		size := loadSize(in.Op)
		ev.MemAddr, ev.MemSize = addr, size
		extra, v, mmio, err := m.load(addr, size)
		if err != nil {
			return err
		}
		ev.Extra += extra
		ev.MMIO = mmio
		rd = extendLoad(in.Op, v)
	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		writeRd = false
		addr := rs1 + uint64(in.Imm)
		size := storeSize(in.Op)
		ev.MemAddr, ev.MemSize = addr, size
		extra, mmio, err := m.store(addr, size, rs2)
		if err != nil {
			return err
		}
		ev.Extra += extra
		ev.MMIO = mmio
	case isa.OpECALL:
		writeRd = false
		ev.Syscall = true
		if m.SyscallFn == nil {
			return m.trapf("ECALL with no syscall handler")
		}
		if err := m.SyscallFn(m); err != nil {
			return err
		}
	case isa.OpEBREAK:
		writeRd = false
		m.Halted = true
		m.ExitCode = -1
	case isa.OpCSRRS, isa.OpCSRRW:
		v, err := m.readCSR(uint16(in.Imm))
		if err != nil {
			return err
		}
		rd = v
		// CSR writes to the counters are ignored (read-only counters).
	case isa.OpADDW:
		rd = sext32(uint32(rs1) + uint32(rs2))
	case isa.OpSUBW:
		rd = sext32(uint32(rs1) - uint32(rs2))
	case isa.OpSLLW:
		rd = sext32(uint32(rs1) << (rs2 & 31))
	case isa.OpSRLW:
		rd = sext32(uint32(rs1) >> (rs2 & 31))
	case isa.OpSRAW:
		rd = uint64(int64(int32(rs1) >> (rs2 & 31)))
	case isa.OpADDIW:
		rd = sext32(uint32(rs1) + uint32(in.Imm))
	case isa.OpSLLIW:
		rd = sext32(uint32(rs1) << uint64(in.Imm))
	case isa.OpSRLIW:
		rd = sext32(uint32(rs1) >> uint64(in.Imm))
	case isa.OpSRAIW:
		rd = uint64(int64(int32(rs1) >> uint64(in.Imm)))
	case isa.OpMULW:
		rd = sext32(uint32(rs1) * uint32(rs2))
	case isa.OpDIVW:
		rd = divw(int32(rs1), int32(rs2))
	case isa.OpDIVUW:
		if uint32(rs2) == 0 {
			rd = ^uint64(0)
		} else {
			rd = sext32(uint32(rs1) / uint32(rs2))
		}
	case isa.OpREMW:
		rd = remw(int32(rs1), int32(rs2))
	case isa.OpREMUW:
		if uint32(rs2) == 0 {
			rd = sext32(uint32(rs1))
		} else {
			rd = sext32(uint32(rs1) % uint32(rs2))
		}
	case isa.OpFENCE:
		writeRd = false
	default:
		return m.trapf("unimplemented op %v", in.Op)
	}

	if writeRd && in.Rd != 0 {
		if m.TamperFn != nil {
			rd = m.TamperFn(ev.PC, in.Op, rd)
		}
		m.Regs[in.Rd] = rd
	}
	m.Regs[0] = 0
	if !m.Halted {
		m.PC = next
	}
	ev.NextPC = m.PC
	m.Instret++
	if m.Trace != nil {
		fmt.Fprintf(m.Trace, "core 0: %#08x (%#08x) %s\n", ev.PC, in.Raw, isa.Disassemble(in))
	}
	return nil
}

func (m *Machine) readCSR(csr uint16) (uint64, error) {
	switch csr {
	case isa.CSRCycle, isa.CSRTime:
		return m.Now, nil
	case isa.CSRInstret:
		return m.Instret, nil
	case isa.CSRMHartID:
		return m.HartID, nil
	default:
		return 0, m.trapf("unimplemented CSR %#x", csr)
	}
}

func (m *Machine) load(addr uint64, size int) (extra, val uint64, mmio bool, err error) {
	for _, h := range m.Hooks {
		e, herr := h.BeforeAccess(m, addr, false)
		if herr != nil {
			return 0, 0, false, herr
		}
		extra += e
	}
	if d := m.device(addr); d != nil {
		v, e, derr := d.Load(m, addr, size)
		if derr != nil {
			return 0, 0, true, derr
		}
		return extra + e, v, true, nil
	}
	return extra, m.Mem.Read(addr, size), false, nil
}

func (m *Machine) store(addr uint64, size int, val uint64) (extra uint64, mmio bool, err error) {
	for _, h := range m.Hooks {
		e, herr := h.BeforeAccess(m, addr, true)
		if herr != nil {
			return 0, false, herr
		}
		extra += e
	}
	if d := m.device(addr); d != nil {
		e, derr := d.Store(m, addr, size, val)
		if derr != nil {
			return 0, true, derr
		}
		return extra + e, true, nil
	}
	m.Mem.Write(addr, size, val)
	if addr-m.predLo < m.predHi-m.predLo {
		m.invalidateCode(addr, size)
	}
	return extra, false, nil
}

func loadSize(op isa.Op) int {
	switch op {
	case isa.OpLB, isa.OpLBU:
		return 1
	case isa.OpLH, isa.OpLHU:
		return 2
	case isa.OpLW, isa.OpLWU:
		return 4
	default:
		return 8
	}
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.OpSB:
		return 1
	case isa.OpSH:
		return 2
	case isa.OpSW:
		return 4
	default:
		return 8
	}
}

func extendLoad(op isa.Op, v uint64) uint64 {
	switch op {
	case isa.OpLB:
		return uint64(int64(int8(v)))
	case isa.OpLH:
		return uint64(int64(int16(v)))
	case isa.OpLW:
		return uint64(int64(int32(v)))
	default:
		return v
	}
}

func mulh(a, b int64) uint64 {
	hi, _ := mul128(uint64(a), uint64(b))
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return hi
}

func mulhu(a, b uint64) uint64 {
	hi, _ := mul128(a, b)
	return hi
}

// mul128 computes the full 128-bit product of two uint64s.
func mul128(a, b uint64) (hi, lo uint64) {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	t := aLo * bLo
	lo = t & 0xffffffff
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & 0xffffffff
	hi = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & 0xffffffff) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// sext32 sign-extends a 32-bit value to 64 bits.
func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func divw(a, b int32) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<31 && b == -1:
		return sext32(uint32(a))
	default:
		return sext32(uint32(a / b))
	}
}

func remw(a, b int32) uint64 {
	switch {
	case b == 0:
		return sext32(uint32(a))
	case a == -1<<31 && b == -1:
		return 0
	default:
		return sext32(uint32(a % b))
	}
}

func div(a, b int64) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<63 && b == -1:
		return uint64(a) // overflow case per spec
	default:
		return uint64(a / b)
	}
}

func rem(a, b int64) uint64 {
	switch {
	case b == 0:
		return uint64(a)
	case a == -1<<63 && b == -1:
		return 0
	default:
		return uint64(a % b)
	}
}

// Snapshot captures architectural state for determinism checks.
type Snapshot struct {
	Regs    [32]uint64
	PC      uint64
	Instret uint64
}

// Snap returns the current architectural snapshot.
func (m *Machine) Snap() Snapshot {
	return Snapshot{Regs: m.Regs, PC: m.PC, Instret: m.Instret}
}
