// Package sim implements the guest machine shared by the functional
// simulator (internal/sim/funcsim, the QEMU/Spike role) and the cycle-exact
// simulator (internal/sim/rtlsim, the FireSim role). The machine executes
// RV64IM-subset instructions over sparse memory with memory-mapped devices
// and an environment-provided syscall handler. Each Step returns an Event
// describing what happened microarchitecturally so timing models can charge
// cycles without re-interpreting the instruction.
package sim

import (
	"fmt"
	"io"

	"firemarshal/internal/isa"
)

// Device is a memory-mapped peripheral.
type Device interface {
	// Name identifies the device in traces and errors.
	Name() string
	// Contains reports whether the device claims the address.
	Contains(addr uint64) bool
	// Load reads size bytes of device state. extra is additional cycles the
	// access costs beyond a regular uncached access (cycle-exact mode only).
	Load(m *Machine, addr uint64, size int) (val uint64, extra uint64, err error)
	// Store writes size bytes of device state.
	Store(m *Machine, addr uint64, size int, val uint64) (extra uint64, err error)
}

// MemHook observes data memory accesses before they happen. The Page Fault
// Accelerator and the software-paging baseline install hooks to model
// remote-memory residency.
type MemHook interface {
	// BeforeAccess may service a fault for addr. It returns extra cycles the
	// access costs (cycle-exact mode only).
	BeforeAccess(m *Machine, addr uint64, store bool) (extra uint64, err error)
}

// Event describes one executed instruction for timing models.
type Event struct {
	PC     uint64
	Instr  isa.Instr
	NextPC uint64
	// Taken is set for conditional branches that were taken.
	Taken bool
	// MemAddr/MemSize are valid for loads and stores.
	MemAddr uint64
	MemSize int
	// MMIO is set when the access hit a device rather than RAM.
	MMIO bool
	// Extra is additional cycles charged by devices or memory hooks.
	Extra uint64
	// Syscall is set when the instruction was an ECALL.
	Syscall bool
}

// Machine is one simulated hart plus its memory and devices.
type Machine struct {
	Regs [32]uint64
	PC   uint64
	Mem  *Memory

	// Devices are checked in order for MMIO claims.
	Devices []Device
	// Hooks observe data accesses (remote-memory models).
	Hooks []MemHook
	// SyscallFn handles ECALL. The handler may halt the machine, modify
	// registers, or return an error to abort simulation.
	SyscallFn func(m *Machine) error
	// Console receives guest console output (the serial port log).
	Console io.Writer

	// Now is the current cycle, maintained by the driving simulator and
	// visible to the guest through rdcycle. Functional simulation advances
	// it by one per instruction.
	Now uint64
	// Instret counts retired instructions.
	Instret uint64
	// HartID is exposed through the mhartid CSR.
	HartID uint64

	// Halted is set when the guest exits; ExitCode holds its status.
	Halted   bool
	ExitCode int64

	// MaxInstrs aborts runaway programs when nonzero.
	MaxInstrs uint64

	// Trace, when set, receives one line per retired instruction (the
	// role of spike -l). Tracing is slow; leave nil in normal runs.
	Trace io.Writer

	// TamperFn, when set, transforms each result before register writeback
	// — deterministic fault injection for post-tapeout bring-up triage
	// (the §VI use case of running identical suites against potentially
	// faulty silicon).
	TamperFn func(pc uint64, op isa.Op, rd uint64) uint64

	decodeCache map[uint64]isa.Instr

	// Dense predecoded text segment (fast fetch path).
	predecoded     []isa.Instr
	predecodedOK   []bool
	predecodedBase uint64
}

// NewMachine returns a machine with empty memory.
func NewMachine() *Machine {
	return &Machine{
		Mem:         NewMemory(),
		Console:     io.Discard,
		decodeCache: map[uint64]isa.Instr{},
	}
}

// LoadExecutable copies segments into memory and points the PC at the entry.
// The stack pointer is initialized just below stackTop. The segment
// containing the entry point (the text segment) is predecoded for fast
// fetch.
func (m *Machine) LoadExecutable(exe *isa.Executable, stackTop uint64) {
	for _, seg := range exe.Segments {
		m.Mem.WriteBytes(seg.Addr, seg.Data)
	}
	m.PC = exe.Entry
	if stackTop != 0 {
		m.Regs[2] = stackTop
	}
	m.decodeCache = map[uint64]isa.Instr{}
	m.predecoded, m.predecodedOK, m.predecodedBase = nil, nil, 0
	for _, seg := range exe.Segments {
		if exe.Entry < seg.Addr || exe.Entry >= seg.Addr+uint64(len(seg.Data)) {
			continue
		}
		n := len(seg.Data) / 4
		m.predecoded = make([]isa.Instr, n)
		m.predecodedOK = make([]bool, n)
		m.predecodedBase = seg.Addr
		for i := 0; i < n; i++ {
			raw := uint32(seg.Data[i*4]) | uint32(seg.Data[i*4+1])<<8 |
				uint32(seg.Data[i*4+2])<<16 | uint32(seg.Data[i*4+3])<<24
			in, err := isa.Decode(raw)
			if err == nil {
				m.predecoded[i] = in
				m.predecodedOK[i] = true
			}
		}
		break
	}
}

// ErrTrap is returned for guest faults (bad fetch, bad instruction).
type ErrTrap struct {
	PC  uint64
	Msg string
}

func (e *ErrTrap) Error() string { return fmt.Sprintf("sim: trap at pc=%#x: %s", e.PC, e.Msg) }

func (m *Machine) trapf(format string, args ...any) error {
	return &ErrTrap{PC: m.PC, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) device(addr uint64) Device {
	for _, d := range m.Devices {
		if d.Contains(addr) {
			return d
		}
	}
	return nil
}

// Step executes one instruction. It is the single execution path used by
// every simulator, which is what guarantees functional equivalence between
// simulation levels.
func (m *Machine) Step() (Event, error) {
	var ev Event
	err := m.StepInto(&ev)
	return ev, err
}

// StepInto is the allocation-free Step variant used by simulator hot
// loops: the event is written into *ev instead of returned by value.
func (m *Machine) StepInto(ev *Event) error {
	*ev = Event{PC: m.PC}
	if m.Halted {
		return m.trapf("step on halted machine")
	}
	if m.MaxInstrs > 0 && m.Instret >= m.MaxInstrs {
		return m.trapf("instruction limit %d exceeded", m.MaxInstrs)
	}

	var in isa.Instr
	if idx := (m.PC - m.predecodedBase) / 4; m.predecoded != nil &&
		m.PC >= m.predecodedBase && idx < uint64(len(m.predecoded)) &&
		m.PC&3 == 0 && m.predecodedOK[idx] {
		in = m.predecoded[idx]
	} else {
		var ok bool
		in, ok = m.decodeCache[m.PC]
		if !ok {
			raw := uint32(m.Mem.Read(m.PC, 4))
			var err error
			in, err = isa.Decode(raw)
			if err != nil {
				return m.trapf("%v", err)
			}
			m.decodeCache[m.PC] = in
		}
	}
	ev.Instr = in
	next := m.PC + 4

	rs1 := m.Regs[in.Rs1]
	rs2 := m.Regs[in.Rs2]
	var rd uint64
	writeRd := true

	switch in.Op {
	case isa.OpADD:
		rd = rs1 + rs2
	case isa.OpSUB:
		rd = rs1 - rs2
	case isa.OpSLL:
		rd = rs1 << (rs2 & 63)
	case isa.OpSLT:
		if int64(rs1) < int64(rs2) {
			rd = 1
		}
	case isa.OpSLTU:
		if rs1 < rs2 {
			rd = 1
		}
	case isa.OpXOR:
		rd = rs1 ^ rs2
	case isa.OpSRL:
		rd = rs1 >> (rs2 & 63)
	case isa.OpSRA:
		rd = uint64(int64(rs1) >> (rs2 & 63))
	case isa.OpOR:
		rd = rs1 | rs2
	case isa.OpAND:
		rd = rs1 & rs2
	case isa.OpMUL:
		rd = rs1 * rs2
	case isa.OpMULH:
		rd = mulh(int64(rs1), int64(rs2))
	case isa.OpMULHU:
		rd = mulhu(rs1, rs2)
	case isa.OpDIV:
		rd = div(int64(rs1), int64(rs2))
	case isa.OpDIVU:
		if rs2 == 0 {
			rd = ^uint64(0)
		} else {
			rd = rs1 / rs2
		}
	case isa.OpREM:
		rd = rem(int64(rs1), int64(rs2))
	case isa.OpREMU:
		if rs2 == 0 {
			rd = rs1
		} else {
			rd = rs1 % rs2
		}
	case isa.OpADDI:
		rd = rs1 + uint64(in.Imm)
	case isa.OpSLTI:
		if int64(rs1) < in.Imm {
			rd = 1
		}
	case isa.OpSLTIU:
		if rs1 < uint64(in.Imm) {
			rd = 1
		}
	case isa.OpXORI:
		rd = rs1 ^ uint64(in.Imm)
	case isa.OpORI:
		rd = rs1 | uint64(in.Imm)
	case isa.OpANDI:
		rd = rs1 & uint64(in.Imm)
	case isa.OpSLLI:
		rd = rs1 << uint64(in.Imm)
	case isa.OpSRLI:
		rd = rs1 >> uint64(in.Imm)
	case isa.OpSRAI:
		rd = uint64(int64(rs1) >> uint64(in.Imm))
	case isa.OpLUI:
		rd = uint64(in.Imm)
	case isa.OpAUIPC:
		rd = m.PC + uint64(in.Imm)
	case isa.OpJAL:
		rd = next
		next = m.PC + uint64(in.Imm)
	case isa.OpJALR:
		rd = next
		next = (rs1 + uint64(in.Imm)) &^ 1
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		writeRd = false
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = rs1 == rs2
		case isa.OpBNE:
			taken = rs1 != rs2
		case isa.OpBLT:
			taken = int64(rs1) < int64(rs2)
		case isa.OpBGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.OpBLTU:
			taken = rs1 < rs2
		case isa.OpBGEU:
			taken = rs1 >= rs2
		}
		ev.Taken = taken
		if taken {
			next = m.PC + uint64(in.Imm)
		}
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU:
		addr := rs1 + uint64(in.Imm)
		size := loadSize(in.Op)
		ev.MemAddr, ev.MemSize = addr, size
		extra, v, mmio, err := m.load(addr, size)
		if err != nil {
			return err
		}
		ev.Extra += extra
		ev.MMIO = mmio
		rd = extendLoad(in.Op, v)
	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		writeRd = false
		addr := rs1 + uint64(in.Imm)
		size := storeSize(in.Op)
		ev.MemAddr, ev.MemSize = addr, size
		extra, mmio, err := m.store(addr, size, rs2)
		if err != nil {
			return err
		}
		ev.Extra += extra
		ev.MMIO = mmio
	case isa.OpECALL:
		writeRd = false
		ev.Syscall = true
		if m.SyscallFn == nil {
			return m.trapf("ECALL with no syscall handler")
		}
		if err := m.SyscallFn(m); err != nil {
			return err
		}
	case isa.OpEBREAK:
		writeRd = false
		m.Halted = true
		m.ExitCode = -1
	case isa.OpCSRRS, isa.OpCSRRW:
		v, err := m.readCSR(uint16(in.Imm))
		if err != nil {
			return err
		}
		rd = v
		// CSR writes to the counters are ignored (read-only counters).
	case isa.OpADDW:
		rd = sext32(uint32(rs1) + uint32(rs2))
	case isa.OpSUBW:
		rd = sext32(uint32(rs1) - uint32(rs2))
	case isa.OpSLLW:
		rd = sext32(uint32(rs1) << (rs2 & 31))
	case isa.OpSRLW:
		rd = sext32(uint32(rs1) >> (rs2 & 31))
	case isa.OpSRAW:
		rd = uint64(int64(int32(rs1) >> (rs2 & 31)))
	case isa.OpADDIW:
		rd = sext32(uint32(rs1) + uint32(in.Imm))
	case isa.OpSLLIW:
		rd = sext32(uint32(rs1) << uint64(in.Imm))
	case isa.OpSRLIW:
		rd = sext32(uint32(rs1) >> uint64(in.Imm))
	case isa.OpSRAIW:
		rd = uint64(int64(int32(rs1) >> uint64(in.Imm)))
	case isa.OpMULW:
		rd = sext32(uint32(rs1) * uint32(rs2))
	case isa.OpDIVW:
		rd = divw(int32(rs1), int32(rs2))
	case isa.OpDIVUW:
		if uint32(rs2) == 0 {
			rd = ^uint64(0)
		} else {
			rd = sext32(uint32(rs1) / uint32(rs2))
		}
	case isa.OpREMW:
		rd = remw(int32(rs1), int32(rs2))
	case isa.OpREMUW:
		if uint32(rs2) == 0 {
			rd = sext32(uint32(rs1))
		} else {
			rd = sext32(uint32(rs1) % uint32(rs2))
		}
	case isa.OpFENCE:
		writeRd = false
	default:
		return m.trapf("unimplemented op %v", in.Op)
	}

	if writeRd && in.Rd != 0 {
		if m.TamperFn != nil {
			rd = m.TamperFn(ev.PC, in.Op, rd)
		}
		m.Regs[in.Rd] = rd
	}
	m.Regs[0] = 0
	if !m.Halted {
		m.PC = next
	}
	ev.NextPC = m.PC
	m.Instret++
	if m.Trace != nil {
		fmt.Fprintf(m.Trace, "core 0: %#08x (%#08x) %s\n", ev.PC, in.Raw, isa.Disassemble(in))
	}
	return nil
}

func (m *Machine) readCSR(csr uint16) (uint64, error) {
	switch csr {
	case isa.CSRCycle, isa.CSRTime:
		return m.Now, nil
	case isa.CSRInstret:
		return m.Instret, nil
	case isa.CSRMHartID:
		return m.HartID, nil
	default:
		return 0, m.trapf("unimplemented CSR %#x", csr)
	}
}

func (m *Machine) load(addr uint64, size int) (extra, val uint64, mmio bool, err error) {
	for _, h := range m.Hooks {
		e, herr := h.BeforeAccess(m, addr, false)
		if herr != nil {
			return 0, 0, false, herr
		}
		extra += e
	}
	if d := m.device(addr); d != nil {
		v, e, derr := d.Load(m, addr, size)
		if derr != nil {
			return 0, 0, true, derr
		}
		return extra + e, v, true, nil
	}
	return extra, m.Mem.Read(addr, size), false, nil
}

func (m *Machine) store(addr uint64, size int, val uint64) (extra uint64, mmio bool, err error) {
	for _, h := range m.Hooks {
		e, herr := h.BeforeAccess(m, addr, true)
		if herr != nil {
			return 0, false, herr
		}
		extra += e
	}
	if d := m.device(addr); d != nil {
		e, derr := d.Store(m, addr, size, val)
		if derr != nil {
			return 0, true, derr
		}
		return extra + e, true, nil
	}
	m.Mem.Write(addr, size, val)
	return extra, false, nil
}

func loadSize(op isa.Op) int {
	switch op {
	case isa.OpLB, isa.OpLBU:
		return 1
	case isa.OpLH, isa.OpLHU:
		return 2
	case isa.OpLW, isa.OpLWU:
		return 4
	default:
		return 8
	}
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.OpSB:
		return 1
	case isa.OpSH:
		return 2
	case isa.OpSW:
		return 4
	default:
		return 8
	}
}

func extendLoad(op isa.Op, v uint64) uint64 {
	switch op {
	case isa.OpLB:
		return uint64(int64(int8(v)))
	case isa.OpLH:
		return uint64(int64(int16(v)))
	case isa.OpLW:
		return uint64(int64(int32(v)))
	default:
		return v
	}
}

func mulh(a, b int64) uint64 {
	hi, _ := mul128(uint64(a), uint64(b))
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return hi
}

func mulhu(a, b uint64) uint64 {
	hi, _ := mul128(a, b)
	return hi
}

// mul128 computes the full 128-bit product of two uint64s.
func mul128(a, b uint64) (hi, lo uint64) {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	t := aLo * bLo
	lo = t & 0xffffffff
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & 0xffffffff
	hi = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & 0xffffffff) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// sext32 sign-extends a 32-bit value to 64 bits.
func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func divw(a, b int32) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<31 && b == -1:
		return sext32(uint32(a))
	default:
		return sext32(uint32(a / b))
	}
}

func remw(a, b int32) uint64 {
	switch {
	case b == 0:
		return sext32(uint32(a))
	case a == -1<<31 && b == -1:
		return 0
	default:
		return sext32(uint32(a % b))
	}
}

func div(a, b int64) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<63 && b == -1:
		return uint64(a) // overflow case per spec
	default:
		return uint64(a / b)
	}
}

func rem(a, b int64) uint64 {
	switch {
	case b == 0:
		return uint64(a)
	case a == -1<<63 && b == -1:
		return 0
	default:
		return uint64(a % b)
	}
}

// Snapshot captures architectural state for determinism checks.
type Snapshot struct {
	Regs    [32]uint64
	PC      uint64
	Instret uint64
}

// Snap returns the current architectural snapshot.
func (m *Machine) Snap() Snapshot {
	return Snapshot{Regs: m.Regs, PC: m.PC, Instret: m.Instret}
}
