package bpred

import (
	"testing"
)

// branchStream generates a deterministic pseudo-random branch trace.
func branchStream(n int) []struct {
	pc    uint64
	taken bool
} {
	out := make([]struct {
		pc    uint64
		taken bool
	}, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i].pc = 0x1000 + (x%64)*4
		out[i].taken = x&0x30 != 0 // biased, like real branches
	}
	return out
}

// TestSaveRestoreRoundTrip trains each predictor, snapshots mid-stream,
// and checks a restored fresh predictor produces the identical
// prediction sequence for the rest of the stream — the property resumed
// cycle-exact runs depend on.
func TestSaveRestoreRoundTrip(t *testing.T) {
	stream := branchStream(4096)
	mid := len(stream) / 2
	for _, name := range []string{"static", "bimodal", "gshare", "tage"} {
		t.Run(name, func(t *testing.T) {
			orig, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, br := range stream[:mid] {
				orig.Predict(br.pc)
				orig.Update(br.pc, br.taken)
			}
			saved, err := orig.Save()
			if err != nil {
				t.Fatal(err)
			}

			restored, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(saved); err != nil {
				t.Fatal(err)
			}
			for i, br := range stream[mid:] {
				want := orig.Predict(br.pc)
				got := restored.Predict(br.pc)
				if got != want {
					t.Fatalf("branch %d: restored predicts %v, original %v", i, got, want)
				}
				orig.Update(br.pc, br.taken)
				restored.Update(br.pc, br.taken)
			}
		})
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	small := NewBimodal(4)
	big := NewBimodal(12)
	st, err := small.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Restore(st); err == nil {
		t.Error("restore across table sizes did not fail")
	}
	tSmall := NewTage(TageConfig{BaseBits: 4, TableBits: 4, TagBits: 8, HistLengths: []uint{3, 9}})
	tBig := NewTage(DefaultTageConfig())
	ts, err := tSmall.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := tBig.Restore(ts); err == nil {
		t.Error("tage restore across configs did not fail")
	}
}
