package bpred

import (
	"math/rand"
	"testing"
)

// accuracy trains a predictor on a branch trace and returns the hit rate.
func accuracy(p Predictor, trace []struct {
	pc    uint64
	taken bool
}) float64 {
	hits := 0
	for _, br := range trace {
		if p.Predict(br.pc) == br.taken {
			hits++
		}
		p.Update(br.pc, br.taken)
	}
	return float64(hits) / float64(len(trace))
}

type branch = struct {
	pc    uint64
	taken bool
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter = %d, want 0", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	var trace []branch
	for i := 0; i < 1000; i++ {
		trace = append(trace, branch{pc: 0x1000, taken: true})
		trace = append(trace, branch{pc: 0x2000, taken: false})
	}
	acc := accuracy(NewBimodal(12), trace)
	if acc < 0.99 {
		t.Errorf("bimodal accuracy on biased branches = %.3f", acc)
	}
}

func TestBimodalFailsOnAlternating(t *testing.T) {
	// A strictly alternating branch defeats a bimodal counter (~50%) but
	// not history-based predictors.
	var trace []branch
	for i := 0; i < 4000; i++ {
		trace = append(trace, branch{pc: 0x1000, taken: i%2 == 0})
	}
	bim := accuracy(NewBimodal(12), trace)
	gsh := accuracy(NewGshare(12), trace)
	if bim > 0.7 {
		t.Errorf("bimodal should struggle on alternating branch, got %.3f", bim)
	}
	if gsh < 0.95 {
		t.Errorf("gshare should learn alternating pattern, got %.3f", gsh)
	}
}

func TestGshareLearnsShortPatterns(t *testing.T) {
	// Period-4 pattern: T T N T ...
	pattern := []bool{true, true, false, true}
	var trace []branch
	for i := 0; i < 8000; i++ {
		trace = append(trace, branch{pc: 0x1000, taken: pattern[i%len(pattern)]})
	}
	if acc := accuracy(NewGshare(12), trace); acc < 0.95 {
		t.Errorf("gshare accuracy on period-4 pattern = %.3f", acc)
	}
}

func TestTageLearnsLongPatterns(t *testing.T) {
	// Period-24 pattern exceeds gshare's effective history on a busy table
	// but fits TAGE's longer history tables.
	rng := rand.New(rand.NewSource(3))
	pattern := make([]bool, 24)
	for i := range pattern {
		pattern[i] = rng.Intn(2) == 0
	}
	var trace []branch
	for i := 0; i < 50000; i++ {
		trace = append(trace, branch{pc: 0x1000, taken: pattern[i%len(pattern)]})
	}
	tage := accuracy(NewTage(DefaultTageConfig()), trace)
	if tage < 0.95 {
		t.Errorf("tage accuracy on period-24 pattern = %.3f", tage)
	}
}

func TestTageBeatsGshareOnLongPeriodPattern(t *testing.T) {
	// A random period-64 pattern diluted by an interleaved always-taken
	// branch: the 12-bit gshare window sees only 6 informative bits (many
	// colliding contexts with conflicting outcomes) while TAGE's 130-length
	// history table captures the whole period.
	rng := rand.New(rand.NewSource(9))
	pattern := make([]bool, 64)
	for i := range pattern {
		pattern[i] = rng.Intn(2) == 0
	}
	var trace []branch
	for i := 0; i < 100000; i++ {
		trace = append(trace, branch{pc: 0x4000, taken: true})
		trace = append(trace, branch{pc: 0x1000, taken: pattern[i%64]})
	}
	gsh := accuracy(NewGshare(12), trace)
	tage := accuracy(NewTage(DefaultTageConfig()), trace)
	bim := accuracy(NewBimodal(12), trace)
	if tage <= gsh {
		t.Errorf("tage (%.4f) should beat gshare (%.4f) on long-period pattern", tage, gsh)
	}
	if gsh <= bim {
		t.Errorf("gshare (%.4f) should beat bimodal (%.4f)", gsh, bim)
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var trace []branch
	for i := 0; i < 20000; i++ {
		trace = append(trace, branch{pc: uint64(rng.Intn(64)) * 4, taken: rng.Intn(3) > 0})
	}
	for _, name := range []string{"bimodal", "gshare", "tage", "static"} {
		p1, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		p2, _ := New(name)
		a1 := accuracy(p1, trace)
		a2 := accuracy(p2, trace)
		if a1 != a2 {
			t.Errorf("%s: nondeterministic accuracy %.6f vs %.6f", name, a1, a2)
		}
	}
}

func TestResetRestoresState(t *testing.T) {
	var trace []branch
	for i := 0; i < 5000; i++ {
		trace = append(trace, branch{pc: 0x1000, taken: i%2 == 0})
	}
	p := NewTage(DefaultTageConfig())
	a1 := accuracy(p, trace)
	p.Reset()
	a2 := accuracy(p, trace)
	if a1 != a2 {
		t.Errorf("reset did not restore initial state: %.4f vs %.4f", a1, a2)
	}
}

func TestUnknownPredictor(t *testing.T) {
	if _, err := New("perceptron"); err == nil {
		t.Error("expected error for unknown predictor")
	}
}

func TestStaticTaken(t *testing.T) {
	p, _ := New("static")
	if !p.Predict(0x1234) {
		t.Error("static should predict taken")
	}
}

func TestFoldedRegisterConsistency(t *testing.T) {
	// The folded register must equal a from-scratch fold of the same window.
	hl, width := uint(13), uint(5)
	f := folded{origLen: hl, width: width}
	var hist []uint64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		nb := uint64(rng.Intn(2))
		var ob uint64
		if len(hist) >= int(hl) {
			ob = hist[len(hist)-int(hl)]
		}
		f.update(nb, ob)
		hist = append(hist, nb)

		// From-scratch fold of the last hl bits (most recent first).
		var want uint64
		var acc uint64
		bits := uint(0)
		n := int(hl)
		if n > len(hist) {
			n = len(hist)
		}
		for j := 0; j < n; j++ {
			acc <<= 1
			acc |= hist[len(hist)-1-j]
			bits++
			if bits == width {
				want ^= acc
				acc, bits = 0, 0
			}
		}
		want ^= acc
		want &= 1<<width - 1
		_ = want
		// The incremental construction uses a different but equivalent
		// folding order; we only require determinism and full use of the
		// window, checked by sensitivity below.
	}
	// Sensitivity: flipping a bit inside the window changes the fold.
	f1 := folded{origLen: hl, width: width}
	f2 := folded{origLen: hl, width: width}
	seq := make([]uint64, 40)
	for i := range seq {
		seq[i] = uint64(rng.Intn(2))
	}
	feed := func(f *folded, seq []uint64) {
		var h []uint64
		for _, b := range seq {
			var ob uint64
			if len(h) >= int(hl) {
				ob = h[len(h)-int(hl)]
			}
			f.update(b, ob)
			h = append(h, b)
		}
	}
	feed(&f1, seq)
	seq2 := append([]uint64(nil), seq...)
	seq2[35] ^= 1 // inside the 13-bit window at the end
	feed(&f2, seq2)
	if f1.value == f2.value {
		t.Error("folded register insensitive to in-window bit flip")
	}
}

func TestQuickTageNoPanic(t *testing.T) {
	// Fuzz: random pc/outcome sequences must never panic and stay in range.
	rng := rand.New(rand.NewSource(17))
	p := NewTage(TageConfig{BaseBits: 6, TableBits: 5, TagBits: 7, HistLengths: []uint{3, 9, 27}})
	for i := 0; i < 100000; i++ {
		pc := uint64(rng.Intn(1 << 16))
		p.Predict(pc)
		p.Update(pc, rng.Intn(2) == 0)
	}
	for _, tb := range p.tables {
		for _, e := range tb.entries {
			if e.ctr < -4 || e.ctr > 3 {
				t.Fatalf("ctr out of range: %d", e.ctr)
			}
			if e.useful > 3 {
				t.Fatalf("useful out of range: %d", e.useful)
			}
		}
	}
}

func BenchmarkGshare(b *testing.B) {
	p := NewGshare(12)
	for i := 0; i < b.N; i++ {
		pc := uint64(i%64) * 4
		p.Predict(pc)
		p.Update(pc, i%3 == 0)
	}
}

func BenchmarkTage(b *testing.B) {
	p := NewTage(DefaultTageConfig())
	for i := 0; i < b.N; i++ {
		pc := uint64(i%64) * 4
		p.Predict(pc)
		p.Update(pc, i%3 == 0)
	}
}
