package bpred

// TAGE (TAgged GEometric history length) predictor after Seznec & Michaud,
// "A case for (partially) TAgged GEometric history length branch
// prediction". A bimodal base predictor is backed by several tagged tables
// indexed with geometrically increasing global-history lengths; the longest
// matching table provides the prediction, and entries are allocated on
// mispredictions. This is the predictor class BOOM adopted after Gshare,
// which the paper's SPEC2017 case study evaluates (§IV-B, Fig. 6).
//
// History folding uses the standard circular-shifted-register construction
// so every operation is O(1) in the history length.

// TageConfig sizes the predictor.
type TageConfig struct {
	// BaseBits sizes the bimodal base table (2^BaseBits entries).
	BaseBits uint
	// TableBits sizes each tagged table (2^TableBits entries).
	TableBits uint
	// TagBits is the partial tag width.
	TagBits uint
	// HistLengths are the geometric history lengths, shortest first.
	HistLengths []uint
}

// DefaultTageConfig returns a 4-table configuration comparable in storage
// budget to the gshare predictor it is benchmarked against.
func DefaultTageConfig() TageConfig {
	return TageConfig{
		BaseBits:    12,
		TableBits:   10,
		TagBits:     10,
		HistLengths: []uint{5, 15, 44, 130},
	}
}

type tageEntry struct {
	ctr    int8 // 3-bit signed counter, -4..3; >=0 predicts taken
	tag    uint32
	useful uint8 // 2-bit usefulness
}

// folded is an incrementally maintained folded-history register.
type folded struct {
	value   uint64
	origLen uint // history length being folded
	width   uint // folded width in bits
}

func (f *folded) update(newBit, oldBit uint64) {
	f.value = (f.value << 1) | newBit
	f.value ^= oldBit << (f.origLen % f.width)
	f.value ^= f.value >> f.width
	f.value &= 1<<f.width - 1
}

type tageTable struct {
	entries []tageEntry
	histLen uint
	idxBits uint
	tagBits uint
	fIdx    folded
	fTag1   folded
	fTag2   folded
}

// Tage is the predictor state.
type Tage struct {
	cfg    TageConfig
	base   *Bimodal
	tables []*tageTable

	// Global history as a circular bit buffer (most recent at head-1).
	hist    []uint8
	head    int
	histLen int

	allocFailures int

	// prediction bookkeeping between Predict and Update
	lastPC       uint64
	lastValid    bool
	lastProvider int // providing table index, -1 = base
	lastAltPred  bool
	lastPred     bool
	lastIndices  []uint64
	lastTags     []uint32
}

// NewTage constructs a TAGE predictor.
func NewTage(cfg TageConfig) *Tage {
	t := &Tage{cfg: cfg}
	t.Reset()
	return t
}

// Name implements Predictor.
func (t *Tage) Name() string { return "tage" }

// Reset implements Predictor.
func (t *Tage) Reset() {
	t.base = NewBimodal(t.cfg.BaseBits)
	t.tables = nil
	for _, hl := range t.cfg.HistLengths {
		tb := &tageTable{
			entries: make([]tageEntry, 1<<t.cfg.TableBits),
			histLen: hl,
			idxBits: t.cfg.TableBits,
			tagBits: t.cfg.TagBits,
		}
		tb.fIdx = folded{origLen: hl, width: tb.idxBits}
		tb.fTag1 = folded{origLen: hl, width: tb.tagBits}
		tb.fTag2 = folded{origLen: hl, width: tb.tagBits - 1}
		t.tables = append(t.tables, tb)
	}
	maxLen := int(t.cfg.HistLengths[len(t.cfg.HistLengths)-1])
	t.hist = make([]uint8, maxLen+1)
	t.head = 0
	t.histLen = maxLen + 1
	t.allocFailures = 0
	t.lastIndices = make([]uint64, len(t.tables))
	t.lastTags = make([]uint32, len(t.tables))
	t.lastValid = false
}

// histBit returns the history bit `age` branches ago (age >= 1).
func (t *Tage) histBit(age uint) uint64 {
	i := (t.head - int(age) + t.histLen*2) % t.histLen
	return uint64(t.hist[i])
}

func (t *Tage) pushHistory(taken bool) {
	var b uint8
	if taken {
		b = 1
	}
	newBit := uint64(b)
	for _, tb := range t.tables {
		oldBit := t.histBit(tb.histLen) // bit falling out of this table's window
		tb.fIdx.update(newBit, oldBit)
		tb.fTag1.update(newBit, oldBit)
		tb.fTag2.update(newBit, oldBit)
	}
	t.hist[t.head] = b
	t.head = (t.head + 1) % t.histLen
}

func (tb *tageTable) indexAndTag(pc uint64) (uint64, uint32) {
	idx := ((pc >> 2) ^ (pc >> (2 + tb.idxBits)) ^ tb.fIdx.value) & (1<<tb.idxBits - 1)
	tag := uint32(((pc >> 2) ^ tb.fTag1.value ^ (tb.fTag2.value << 1)) & (1<<tb.tagBits - 1))
	return idx, tag
}

// Predict implements Predictor.
func (t *Tage) Predict(pc uint64) bool {
	t.lastPC = pc
	t.lastValid = true
	t.lastProvider = -1
	basePred := t.base.Predict(pc)
	t.lastAltPred = basePred
	pred := basePred

	altFound := false
	for ti := len(t.tables) - 1; ti >= 0; ti-- {
		idx, tag := t.tables[ti].indexAndTag(pc)
		t.lastIndices[ti], t.lastTags[ti] = idx, tag
		e := &t.tables[ti].entries[idx]
		if e.tag == tag {
			if t.lastProvider == -1 {
				t.lastProvider = ti
				pred = e.ctr >= 0
			} else if !altFound {
				t.lastAltPred = e.ctr >= 0
				altFound = true
			}
		}
	}
	t.lastPred = pred
	return pred
}

// Update implements Predictor. It must be called once per branch after
// Predict; calling it standalone recomputes the prediction context first.
func (t *Tage) Update(pc uint64, taken bool) {
	if !t.lastValid || t.lastPC != pc {
		t.Predict(pc)
	}
	t.lastValid = false

	correct := t.lastPred == taken
	if t.lastProvider >= 0 {
		tb := t.tables[t.lastProvider]
		e := &tb.entries[t.lastIndices[t.lastProvider]]
		if (e.ctr >= 0) == taken && t.lastAltPred != taken {
			if e.useful < 3 {
				e.useful++
			}
		}
		if (e.ctr >= 0) != taken && t.lastAltPred == taken && e.useful > 0 {
			e.useful--
		}
		e.ctr = satUpdate3(e.ctr, taken)
	} else {
		t.base.Update(pc, taken)
	}

	// On a misprediction, allocate an entry in a longer-history table.
	if !correct && t.lastProvider < len(t.tables)-1 {
		allocated := false
		for ti := t.lastProvider + 1; ti < len(t.tables); ti++ {
			e := &t.tables[ti].entries[t.lastIndices[ti]]
			if e.useful == 0 {
				e.tag = t.lastTags[ti]
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			t.allocFailures++
			// Periodically age usefulness so the predictor can adapt.
			if t.allocFailures >= 32 {
				t.allocFailures = 0
				for _, tb := range t.tables {
					for i := range tb.entries {
						if tb.entries[i].useful > 0 {
							tb.entries[i].useful--
						}
					}
				}
			}
		}
	}

	t.pushHistory(taken)
}

func satUpdate3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}
