// Package bpred implements the branch direction predictors used by the
// cycle-exact simulator: a bimodal table, a Gshare predictor (the BOOM v2
// baseline in the paper's SPEC2017 case study), and a TAGE predictor (the
// "more recent TAGE-based predictor" the case study compares against,
// §IV-B). All predictors are deterministic.
package bpred

import "fmt"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Name identifies the predictor in results.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Reset restores initial state.
	Reset()
	// Save serializes the predictor's state for a deterministic
	// simulation checkpoint. It must only be called between branches
	// (i.e. not between a Predict and its Update).
	Save() ([]byte, error)
	// Restore replaces the predictor's state with a prior Save. The
	// predictor must be configured identically to the one that saved.
	Restore(data []byte) error
}

// New constructs a predictor by name: "bimodal", "gshare", or "tage".
func New(name string) (Predictor, error) {
	switch name {
	case "bimodal":
		return NewBimodal(12), nil
	case "gshare":
		return NewGshare(12), nil
	case "tage":
		return NewTage(DefaultTageConfig()), nil
	case "static", "always-taken":
		return StaticTaken{}, nil
	default:
		return nil, fmt.Errorf("bpred: unknown predictor %q", name)
	}
}

// StaticTaken predicts every branch taken — the floor any dynamic predictor
// must beat.
type StaticTaken struct{}

// Name implements Predictor.
func (StaticTaken) Name() string { return "static" }

// Predict implements Predictor.
func (StaticTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (StaticTaken) Update(uint64, bool) {}

// Reset implements Predictor.
func (StaticTaken) Reset() {}

// counter is a 2-bit saturating counter; values 0-1 predict not-taken,
// 2-3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	bits  uint
	table []counter
}

// NewBimodal returns a bimodal predictor with 2^bits entries.
func NewBimodal(bits uint) *Bimodal {
	b := &Bimodal{bits: bits}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) index(pc uint64) uint64 {
	return (pc >> 2) & (uint64(len(b.table)) - 1)
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	b.table = make([]counter, 1<<b.bits)
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
}

// Gshare XORs a global history register with the PC to index a table of
// 2-bit counters (McFarling).
type Gshare struct {
	bits    uint
	table   []counter
	history uint64
}

// NewGshare returns a gshare predictor with 2^bits entries and a history
// register of the same width.
func NewGshare(bits uint) *Gshare {
	g := &Gshare{bits: bits}
	g.Reset()
	return g
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & (uint64(len(g.table)) - 1)
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. The history register shifts in the outcome.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= 1<<g.bits - 1
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	g.table = make([]counter, 1<<g.bits)
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}
