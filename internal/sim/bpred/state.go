package bpred

// Checkpoint serialization for the predictors. A resumed cycle-exact
// simulation only reproduces bit-identical cycle counts if the branch
// predictor resumes with exactly the tables and history it had at the
// snapshot, so Save captures everything Predict/Update read: counter
// tables, global history (including the folded-history registers TAGE
// maintains incrementally), and the usefulness-aging counter. The
// Predict→Update bookkeeping (lastPC et al.) is deliberately excluded:
// checkpoints fire between retired instructions, and every Predict is
// consumed by its Update within a single instruction's charge, so that
// state is always dead at a snapshot; Restore just invalidates it.

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Save implements Predictor. StaticTaken has no state.
func (StaticTaken) Save() ([]byte, error) { return nil, nil }

// Restore implements Predictor.
func (StaticTaken) Restore(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("bpred: static predictor restore with %d bytes of state", len(data))
	}
	return nil
}

type bimodalState struct {
	Table []uint8
}

// Save implements Predictor.
func (b *Bimodal) Save() ([]byte, error) {
	st := bimodalState{Table: make([]uint8, len(b.table))}
	for i, c := range b.table {
		st.Table[i] = uint8(c)
	}
	return gobEncode(&st)
}

// Restore implements Predictor.
func (b *Bimodal) Restore(data []byte) error {
	var st bimodalState
	if err := gobDecode(data, &st); err != nil {
		return fmt.Errorf("bpred: bimodal restore: %w", err)
	}
	if len(st.Table) != len(b.table) {
		return fmt.Errorf("bpred: bimodal restore: %d entries, want %d", len(st.Table), len(b.table))
	}
	for i, v := range st.Table {
		b.table[i] = counter(v)
	}
	return nil
}

type gshareState struct {
	Table   []uint8
	History uint64
}

// Save implements Predictor.
func (g *Gshare) Save() ([]byte, error) {
	st := gshareState{Table: make([]uint8, len(g.table)), History: g.history}
	for i, c := range g.table {
		st.Table[i] = uint8(c)
	}
	return gobEncode(&st)
}

// Restore implements Predictor.
func (g *Gshare) Restore(data []byte) error {
	var st gshareState
	if err := gobDecode(data, &st); err != nil {
		return fmt.Errorf("bpred: gshare restore: %w", err)
	}
	if len(st.Table) != len(g.table) {
		return fmt.Errorf("bpred: gshare restore: %d entries, want %d", len(st.Table), len(g.table))
	}
	for i, v := range st.Table {
		g.table[i] = counter(v)
	}
	g.history = st.History
	return nil
}

type tageEntryState struct {
	Ctr    int8
	Tag    uint32
	Useful uint8
}

type tageTableState struct {
	Entries []tageEntryState
	FIdx    uint64
	FTag1   uint64
	FTag2   uint64
}

type tageState struct {
	Base          []uint8
	Tables        []tageTableState
	Hist          []uint8
	Head          int
	AllocFailures int
}

// Save implements Predictor.
func (t *Tage) Save() ([]byte, error) {
	st := tageState{
		Hist:          append([]uint8(nil), t.hist...),
		Head:          t.head,
		AllocFailures: t.allocFailures,
	}
	baseBytes, err := t.base.Save()
	if err != nil {
		return nil, err
	}
	st.Base = baseBytes
	for _, tb := range t.tables {
		ts := tageTableState{
			Entries: make([]tageEntryState, len(tb.entries)),
			FIdx:    tb.fIdx.value,
			FTag1:   tb.fTag1.value,
			FTag2:   tb.fTag2.value,
		}
		for i, e := range tb.entries {
			ts.Entries[i] = tageEntryState{Ctr: e.ctr, Tag: e.tag, Useful: e.useful}
		}
		st.Tables = append(st.Tables, ts)
	}
	return gobEncode(&st)
}

// Restore implements Predictor.
func (t *Tage) Restore(data []byte) error {
	var st tageState
	if err := gobDecode(data, &st); err != nil {
		return fmt.Errorf("bpred: tage restore: %w", err)
	}
	if len(st.Tables) != len(t.tables) {
		return fmt.Errorf("bpred: tage restore: %d tables, want %d", len(st.Tables), len(t.tables))
	}
	if len(st.Hist) != len(t.hist) {
		return fmt.Errorf("bpred: tage restore: history length %d, want %d", len(st.Hist), len(t.hist))
	}
	if err := t.base.Restore(st.Base); err != nil {
		return err
	}
	for ti, ts := range st.Tables {
		tb := t.tables[ti]
		if len(ts.Entries) != len(tb.entries) {
			return fmt.Errorf("bpred: tage restore: table %d has %d entries, want %d",
				ti, len(ts.Entries), len(tb.entries))
		}
		for i, e := range ts.Entries {
			tb.entries[i] = tageEntry{ctr: e.Ctr, tag: e.Tag, useful: e.Useful}
		}
		tb.fIdx.value = ts.FIdx
		tb.fTag1.value = ts.FTag1
		tb.fTag2.value = ts.FTag2
	}
	copy(t.hist, st.Hist)
	t.head = st.Head
	t.allocFailures = st.AllocFailures
	t.lastValid = false
	return nil
}
