package sim

import (
	"firemarshal/internal/isa"
)

// Checkpoint/restore of a Machine's complete architectural state.
//
// What must be captured is exactly what execution semantics depend on:
// registers, PC, the counter CSRs (cycle/instret, i.e. Now/Instret),
// hart id, halt state, and memory contents. Everything else the Machine
// holds — the predecoded segments, the fallback decode cache, the soft
// TLB, the device index, the code-invalidation guard — is a pure cache
// over memory and is rebuilt on restore rather than serialized: fetch
// always returns decode(mem[pc]) whether it hits a cache or not, so a
// restored machine with cold caches retires the identical instruction
// stream. Devices in the base platform (the UART) are stateless;
// platform-level state (branch predictor, cache models, cycle counters)
// is the platform's to save, via the checkpoint package's extra-state
// hooks.

// ArchState is the serializable architectural core of a Machine. Memory
// travels separately (as content-addressed pages) because it dominates
// the snapshot and dedups across checkpoints.
type ArchState struct {
	Regs     [32]uint64 `json:"regs"`
	PC       uint64     `json:"pc"`
	Now      uint64     `json:"now"`
	Instret  uint64     `json:"instret"`
	HartID   uint64     `json:"hartid"`
	Halted   bool       `json:"halted,omitempty"`
	ExitCode int64      `json:"exit,omitempty"`
}

// SaveArch captures the machine's architectural state. Callers must only
// invoke it at an instruction boundary with state published — in
// practice, from inside a CkptFn.
func (m *Machine) SaveArch() ArchState {
	return ArchState{
		Regs:     m.Regs,
		PC:       m.PC,
		Now:      m.Now,
		Instret:  m.Instret,
		HartID:   m.HartID,
		Halted:   m.Halted,
		ExitCode: m.ExitCode,
	}
}

// RestoreArch installs a saved architectural state and rebuilds the
// decode caches from current memory. Callers must restore memory
// contents first (Mem.Reset + SetPage per checkpointed page); the
// machine must already have its executable loaded so segment bounds
// exist to re-predecode into. The restore boundary is marked as
// checkpointed so the first retired instruction does not immediately
// re-snapshot.
func (m *Machine) RestoreArch(st ArchState) {
	m.Regs = st.Regs
	m.PC = st.PC
	m.Now = st.Now
	m.Instret = st.Instret
	m.HartID = st.HartID
	m.Halted = st.Halted
	m.ExitCode = st.ExitCode
	m.lastCkpt = st.Instret
	m.RebuildCode()
}

// RebuildCode re-predecodes every loaded segment from current memory and
// drops the fallback decode cache. Decoding from memory — not from the
// original executable image — keeps fetch coherent with any code the
// guest wrote over itself before the checkpoint. The code guard is
// recomputed from the segments; it re-widens lazily as out-of-segment
// code is decoded again, exactly as it did on first execution.
func (m *Machine) RebuildCode() {
	m.dcache = nil
	m.resetTraces()
	m.codeMin, m.codeMax = ^uint64(0), 0
	for i := range m.segs {
		s := &m.segs[i]
		for w := s.base; w < s.limit; w += 4 {
			idx := (w - s.base) >> 2
			raw := uint32(m.Mem.Read(w, 4))
			if in, err := isa.Decode(raw); err == nil {
				s.instrs[idx] = in
				s.uops[idx] = packUop(in)
				if w < m.codeMin {
					m.codeMin = w
				}
				if w+4 > m.codeMax {
					m.codeMax = w + 4
				}
			} else {
				s.instrs[idx] = isa.Instr{}
				s.uops[idx] = uop{}
			}
		}
	}
	if len(m.segs) > 0 {
		m.curSeg = &m.segs[0]
	}
	m.updateCodeGuard()
}
