package sim

import (
	"bytes"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/workgen"
)

// diffRun executes src on two fresh machines — one through the reference
// StepInto loop, one through the predecoded fast path — and asserts the
// two end in bit-identical architectural state with identical console
// output, exit code, and retired-instruction / cycle counts. This is the
// harness that locks "fast ≡ reference": any divergence in the fast
// loop's semantics is a test failure, not a silent mis-simulation.
func diffRun(t testing.TB, src string) {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	mk := func() (*Machine, *bytes.Buffer) {
		m := NewMachine()
		var console bytes.Buffer
		m.Console = &console
		m.SyscallFn = BareSyscalls()
		m.Devices = []Device{&UART{}}
		m.MaxInstrs = 50_000_000
		m.LoadExecutable(exe, DefaultStackTop)
		return m, &console
	}

	ref, refOut := mk()
	refN, refErr := RunReference(ref)

	fast, fastOut := mk()
	// RunFunctional selects the fast loop when no hooks/trace/tamper are
	// installed; fail loudly if that precondition ever changes.
	if fast.Hooks != nil || fast.Trace != nil || fast.TamperFn != nil {
		t.Fatal("diffRun machine unexpectedly has hooks; fast path not exercised")
	}
	fastN, fastErr := RunFunctional(fast)

	if (refErr == nil) != (fastErr == nil) {
		t.Fatalf("error divergence: reference=%v fast=%v", refErr, fastErr)
	}
	if refN != fastN {
		t.Errorf("retired count divergence: reference=%d fast=%d", refN, fastN)
	}
	if ref.Instret != fast.Instret {
		t.Errorf("Instret divergence: reference=%d fast=%d", ref.Instret, fast.Instret)
	}
	if ref.Now != fast.Now {
		t.Errorf("Now divergence: reference=%d fast=%d", ref.Now, fast.Now)
	}
	if ref.ExitCode != fast.ExitCode {
		t.Errorf("exit code divergence: reference=%d fast=%d", ref.ExitCode, fast.ExitCode)
	}
	if ref.Halted != fast.Halted {
		t.Errorf("halt divergence: reference=%v fast=%v", ref.Halted, fast.Halted)
	}
	if rs, fs := ref.Snap(), fast.Snap(); rs != fs {
		t.Errorf("snapshot divergence:\n  reference: %+v\n  fast:      %+v", rs, fs)
	}
	if !bytes.Equal(refOut.Bytes(), fastOut.Bytes()) {
		t.Errorf("console divergence:\n  reference: %q\n  fast:      %q",
			refOut.String(), fastOut.String())
	}
}

// TestDiffIntSpeedSuite runs every generated intspeed benchmark (test
// dataset) through both interpreter paths.
func TestDiffIntSpeedSuite(t *testing.T) {
	for _, b := range workgen.IntSpeedSuite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			diffRun(t, b.Source("test"))
		})
	}
}

// TestDiffRandomPrograms covers the kernel library with a spread of
// deterministic fuzz seeds.
func TestDiffRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		diffRun(t, workgen.RandomSource(seed))
	}
}

// TestDiffEdgeCases pins hand-written corners the generated kernels miss:
// misaligned-width stores into the code-adjacent data, division and shift
// edge values, and large-immediate addressing that forces packUop's
// slow-path fallback.
func TestDiffEdgeCases(t *testing.T) {
	cases := map[string]string{
		"div-edges": `
_start:
    li t0, -9223372036854775808
    li t1, -1
    div t2, t0, t1        # overflow case: result = t0
    rem t3, t0, t1        # overflow case: result = 0
    li t4, 7
    li t5, 0
    div s0, t4, t5        # div by zero: -1
    rem s1, t4, t5        # rem by zero: t4
    divu s2, t4, t5
    add a0, t2, t3
    add a0, a0, s0
    add a0, a0, s1
    add a0, a0, s2
    andi a0, a0, 255
    li a7, 93
    ecall
`,
		"shift-words": `
_start:
    li t0, 0x80000001
    sllw t1, t0, t0       # shamt masked to 5 bits
    srlw t2, t0, t0
    sraw t3, t0, t0
    li t4, 63
    sll t5, t0, t4
    srl s0, t0, t4
    sra s1, t0, t4
    add a0, t1, t2
    add a0, a0, t3
    add a0, a0, t5
    add a0, a0, s0
    add a0, a0, s1
    andi a0, a0, 255
    li a7, 93
    ecall
`,
		"x0-writes": `
_start:
    li t0, 5
    add x0, t0, t0        # writes to x0 must be discarded
    addi x0, x0, 99
    ld x0, 0(sp)
    mv a0, x0
    li a7, 93
    ecall
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { diffRun(t, src) })
	}
}

// FuzzFastVsReference is the differential fuzz target: seeds index into
// workgen's deterministic random-program generator, so every input is a
// valid mixed-kernel guest program. The property under fuzz is total
// equivalence of the fast loop and the reference StepInto loop.
func FuzzFastVsReference(f *testing.F) {
	// The later seeds are chosen to draw the loop-heavy kernel, so the
	// corpus exercises trace compilation and macro-op fusion too.
	for _, seed := range []int64{0, 1, 7, 42, 1337, 0xdead, 1 << 40, 0x77ace, 0xbeef, 99, 1 << 33} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffRun(t, workgen.RandomSource(seed))
	})
}
