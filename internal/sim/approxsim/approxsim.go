// Package approxsim implements a cycle-approximate simulation platform —
// the middle of the simulator spectrum the paper describes (§II-A.2: "In
// between, we find ... cycle-approximate modeling simulators such as gem5
// and Sniper"). It executes the same artifacts as the other platforms but
// estimates time with a table-driven CPI model (fixed cost per instruction
// class plus a statistical branch/memory penalty) instead of simulating
// microarchitectural state. That makes it faster than the cycle-exact
// platform and far more timing-accurate than the functional one — the
// classic detail/performance trade-off.
package approxsim

import (
	"fmt"
	"io"

	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
)

// Config is the CPI model. Costs are in fixed-point 1/256 cycles so the
// model can express fractional average penalties deterministically.
type Config struct {
	// BaseCPI256 is the cost of a simple ALU op (256 = 1.0 CPI).
	BaseCPI256 uint64
	// BranchCPI256 charges the *average* misprediction cost per branch.
	BranchCPI256 uint64
	// LoadCPI256 / StoreCPI256 charge the average memory cost including
	// the statistical cache-miss contribution.
	LoadCPI256  uint64
	StoreCPI256 uint64
	// MulCPI256 / DivCPI256 are long-latency unit costs.
	MulCPI256 uint64
	DivCPI256 uint64
	// MMIOCPI256 covers uncached device access.
	MMIOCPI256 uint64
	// SyscallCPI256 covers trap entry/exit.
	SyscallCPI256 uint64
	// MaxInstrs bounds each Exec (default 500M).
	MaxInstrs uint64
}

// DefaultConfig approximates the cycle-exact default configuration: it was
// fit against the intspeed suite's measured CPIs (see the spectrum
// benchmark), the way gem5 configurations are calibrated against RTL.
func DefaultConfig() Config {
	return Config{
		BaseCPI256:    256,  // 1.00
		BranchCPI256:  512,  // 2.00: 1 + avg mispredict contribution
		LoadCPI256:    640,  // 2.50: 1 + miss-rate * miss-penalty estimate
		StoreCPI256:   512,  // 2.00
		MulCPI256:     1024, // 4.00
		DivCPI256:     5120, // 20.0
		MMIOCPI256:    2816, // 11.0
		SyscallCPI256: 7936, // 31.0
		MaxInstrs:     500_000_000,
	}
}

// Platform is a cycle-approximate simulation node.
type Platform struct {
	cfg       Config
	cycles256 uint64 // fixed-point cycle accumulator
	charged   uint64 // whole cycles already pushed to the public clock
	cycles    uint64
	devices   []sim.Device
	hooks     []sim.MemHook
	fallbacks []sim.SyscallFallback
}

var _ sim.Platform = (*Platform)(nil)

// New creates a cycle-approximate platform.
func New(cfg Config) *Platform {
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 500_000_000
	}
	if cfg.BaseCPI256 == 0 {
		cfg.BaseCPI256 = 256
	}
	p := &Platform{cfg: cfg}
	p.devices = []sim.Device{&sim.UART{}}
	return p
}

// Name implements sim.Platform.
func (p *Platform) Name() string { return "gem5-approx" }

// CycleExact implements sim.Platform: approximate timing is not
// cycle-exact, but it is deterministic and monotonic.
func (p *Platform) CycleExact() bool { return false }

// Cycles implements sim.Platform.
func (p *Platform) Cycles() uint64 { return p.cycles }

// Charge implements sim.Platform.
func (p *Platform) Charge(n uint64) { p.cycles += n }

// AddDevice implements sim.Platform.
func (p *Platform) AddDevice(d sim.Device) { p.devices = append(p.devices, d) }

// AddHook implements sim.Platform.
func (p *Platform) AddHook(h sim.MemHook) { p.hooks = append(p.hooks, h) }

// AddSyscall implements sim.Platform.
func (p *Platform) AddSyscall(fb sim.SyscallFallback) { p.fallbacks = append(p.fallbacks, fb) }

// Exec implements sim.Platform.
func (p *Platform) Exec(exe *isa.Executable, console io.Writer, args ...string) (*sim.ExecResult, error) {
	m := sim.NewMachine()
	m.Console = console
	m.Devices = p.devices
	m.Hooks = p.hooks
	fbs := make([]func(*sim.Machine, uint64) (bool, error), len(p.fallbacks))
	for i, fb := range p.fallbacks {
		fbs[i] = fb
	}
	m.SyscallFn = sim.BareSyscalls(fbs...)
	m.MaxInstrs = p.cfg.MaxInstrs
	m.LoadExecutable(exe, sim.DefaultStackTop)
	sim.SetupArgv(m, args)

	start := p.cycles
	startInstrs := m.Instret
	var ev sim.Event
	for !m.Halted {
		m.Now = p.cycles
		if err := m.StepInto(&ev); err != nil {
			return nil, fmt.Errorf("approxsim: %w", err)
		}
		p.cycles256 += p.cost256(&ev)
		// Flush whole cycles into the public clock.
		if whole := p.cycles256 / 256; whole > p.charged {
			p.cycles += whole - p.charged
			p.charged = whole
		}
	}
	return &sim.ExecResult{
		Exit:   m.ExitCode,
		Instrs: m.Instret - startInstrs,
		Cycles: p.cycles - start,
	}, nil
}

func (p *Platform) cost256(ev *sim.Event) uint64 {
	op := ev.Instr.Op
	cost := p.cfg.BaseCPI256
	switch {
	case op.IsBranch():
		cost = p.cfg.BranchCPI256
	case op.IsLoad():
		cost = p.cfg.LoadCPI256
		if ev.MMIO {
			cost = p.cfg.MMIOCPI256
		}
	case op.IsStore():
		cost = p.cfg.StoreCPI256
		if ev.MMIO {
			cost = p.cfg.MMIOCPI256
		}
	case op.IsMul():
		cost = p.cfg.MulCPI256
	case op.IsMulDiv():
		cost = p.cfg.DivCPI256
	}
	if ev.Syscall {
		cost += p.cfg.SyscallCPI256
	}
	// Device/hook stalls are modeled exactly (they are already estimates).
	return cost + ev.Extra*256
}
