package approxsim

import (
	"bytes"
	"io"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

func build(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

const mixedProgram = `
_start:
    li s0, 0
    li s1, 20000
    la s2, buf
loop:
    andi t0, s0, 63
    slli t0, t0, 3
    add t1, s2, t0
    ld t2, 0(t1)
    add t2, t2, s0
    sd t2, 0(t1)
    mul t3, t2, s0
    andi t4, s0, 7
    beqz t4, skip
    addi s3, s3, 1
skip:
    addi s0, s0, 1
    blt s0, s1, loop
    mv a0, s3
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 512
`

func TestFunctionalEquivalence(t *testing.T) {
	exe := build(t, mixedProgram)
	var aOut, fOut bytes.Buffer
	ap := New(DefaultConfig())
	aRes, err := ap.Exec(exe, &aOut)
	if err != nil {
		t.Fatal(err)
	}
	fp := funcsim.New(funcsim.Config{})
	fRes, err := fp.Exec(exe, &fOut)
	if err != nil {
		t.Fatal(err)
	}
	if aOut.String() != fOut.String() || aRes.Exit != fRes.Exit || aRes.Instrs != fRes.Instrs {
		t.Errorf("approx platform changed functional behaviour")
	}
}

func TestTimingBetweenFunctionalAndExact(t *testing.T) {
	// The spectrum property (§II-A.2): approximate CPI sits well above the
	// functional platform's 1.0 and within a modest error of cycle-exact.
	exe := build(t, mixedProgram)
	ap := New(DefaultConfig())
	aRes, err := ap.Exec(exe, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rtlsim.New(rtlsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := rp.Exec(exe, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if aRes.Cycles <= aRes.Instrs {
		t.Errorf("approx CPI should exceed 1.0: %d cycles / %d instrs", aRes.Cycles, aRes.Instrs)
	}
	ratio := float64(aRes.Cycles) / float64(rRes.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("approx estimate %d vs exact %d (ratio %.2f) outside 2x band", aRes.Cycles, rRes.Cycles, ratio)
	}
}

func TestDeterministic(t *testing.T) {
	exe := build(t, mixedProgram)
	run := func() uint64 {
		p := New(DefaultConfig())
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if run() != run() {
		t.Error("approximate timing must still be deterministic")
	}
}

func TestInstructionClassCosts(t *testing.T) {
	cost := func(op string) uint64 {
		src := "_start:\n"
		for i := 0; i < 100; i++ {
			src += "    " + op + "\n"
		}
		src += "    li a0, 0\n    li a7, 93\n    ecall\n"
		p := New(DefaultConfig())
		res, err := p.Exec(build(t, src), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	add := cost("add t0, t1, t2")
	mul := cost("mul t0, t1, t2")
	div := cost("div t0, t1, t2")
	if !(div > mul && mul > add) {
		t.Errorf("class cost ordering violated: add=%d mul=%d div=%d", add, mul, div)
	}
}

func TestFractionalCPIAccumulates(t *testing.T) {
	// Load CPI is 2.5: 4 loads must cost exactly 10 cycles' worth beyond
	// integer truncation drift.
	src := `
_start:
    la t1, buf
    ld t0, 0(t1)
    ld t0, 0(t1)
    ld t0, 0(t1)
    ld t0, 0(t1)
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 8
`
	p := New(DefaultConfig())
	res, err := p.Exec(build(t, src), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 2 li for la (auipc+addi @1.0) + 4 ld @2.5 + 2 li @1.0 + ecall(1+31)
	want := uint64(2 + 10 + 2 + 32)
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	res, err := p.Exec(build(t, "_start:\n    li a0, 0\n    li a7, 93\n    ecall\n"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("zero config should default to a usable CPI")
	}
	if p.Name() != "gem5-approx" || p.CycleExact() {
		t.Error("identity wrong")
	}
}
