// Package rtlsim implements the cycle-exact simulation platform — the role
// FireSim plays in FireMarshal's workflow (§II-A.3): slow, deterministic,
// cycle-accurate execution of the exact same artifacts that ran in
// functional simulation. The timing model is a scalar in-order core with L1
// instruction/data caches, a configurable branch predictor (Gshare or TAGE,
// §IV-B), multiplier/divider latencies, and MMIO device timing; multi-node
// workloads share a netsim fabric.
//
// Cycle counts are bit-identical across repeated runs of the same workload
// — the determinism the education case study (§IV-C) relies on: "repeatable
// results down to an exact cycle-count".
package rtlsim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/isa"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/bpred"
	"firemarshal/internal/sim/cache"
)

// Config parameterizes the timing model. The zero value is not usable; call
// DefaultConfig and override.
type Config struct {
	// Predictor selects the branch predictor: "bimodal", "gshare", "tage",
	// or "static".
	Predictor string
	// ICache / DCache configure the L1 caches.
	ICache cache.Config
	DCache cache.Config
	// Penalties and latencies, in cycles.
	BranchMissPenalty uint64
	JalrPenalty       uint64
	ICacheMissPenalty uint64
	DCacheMissPenalty uint64
	MMIOLatency       uint64
	MulLatency        uint64
	DivLatency        uint64
	SyscallPenalty    uint64
	// FreqMHz converts cycles to wall-clock time in reports.
	FreqMHz uint64
	// MaxInstrs bounds each Exec (default 500M).
	MaxInstrs uint64
	// FaultMask, when nonzero, injects a deterministic stuck-at fault:
	// results of FaultOp instructions have these bits forced high —
	// modelling defective silicon for post-tapeout bring-up triage (§VI).
	FaultMask uint64
	// FaultOp selects the instruction class the fault affects
	// (default OpMUL when FaultMask is set).
	FaultOp isa.Op
	// Stop is the cooperative kill switch threaded into each machine (see
	// sim.Machine.Stop); polled between instruction batches, so a killed
	// job stops within batchSize retired instructions, cycle-exactly.
	Stop <-chan struct{}
	// Ckpt, when set, records completed Execs and snapshots machine plus
	// timing-model state (predictor tables, cache tags, statistics) at
	// deterministic instruction boundaries, so an interrupted simulation
	// resumes with bit-identical cycle counts (see internal/checkpoint).
	Ckpt *checkpoint.Runtime
	// Obs is the registry sim_rtlsim_* metrics report into; nil resolves
	// to the process-wide obs.Default.
	Obs *obs.Registry
}

// DefaultConfig models a BOOM-like core at 1 GHz with 16KiB L1 caches.
func DefaultConfig() Config {
	return Config{
		Predictor:         "tage",
		ICache:            cache.DefaultL1I(),
		DCache:            cache.DefaultL1D(),
		BranchMissPenalty: 8,
		JalrPenalty:       2,
		ICacheMissPenalty: 20,
		DCacheMissPenalty: 30,
		MMIOLatency:       10,
		MulLatency:        4,
		DivLatency:        20,
		SyscallPenalty:    30,
		FreqMHz:           1000,
		MaxInstrs:         500_000_000,
	}
}

// batchSize is how many instructions each RunBatch call may retire before
// returning to the platform loop.
const batchSize = 4096

// Stats accumulates timing statistics across a platform's executions.
type Stats struct {
	Cycles       uint64
	Instrs       uint64
	Branches     uint64
	Mispredicts  uint64
	ICacheHits   uint64
	ICacheMisses uint64
	DCacheHits   uint64
	DCacheMisses uint64
	MMIOAccesses uint64
	Syscalls     uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// MispredictRate returns mispredicted branches / branches.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Platform is one cycle-exact simulation node.
type Platform struct {
	cfg       Config
	pred      bpred.Predictor
	icache    *cache.Cache
	dcache    *cache.Cache
	cycles    uint64
	devices   []sim.Device
	hooks     []sim.MemHook
	fallbacks []sim.SyscallFallback

	// NodeName identifies this node on the network fabric.
	NodeName string

	stats Stats
}

var _ sim.Platform = (*Platform)(nil)

// New builds a cycle-exact platform.
func New(cfg Config) (*Platform, error) {
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 500_000_000
	}
	// charge() bills multiply/divide ops as latency-1 on top of the base
	// cycle; a user config with a zero latency would wrap uint64. Clamp to
	// the 1-cycle minimum a real pipeline pays.
	if cfg.MulLatency == 0 {
		cfg.MulLatency = 1
	}
	if cfg.DivLatency == 0 {
		cfg.DivLatency = 1
	}
	pred, err := bpred.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return nil, fmt.Errorf("rtlsim: icache: %w", err)
	}
	dc, err := cache.New(cfg.DCache)
	if err != nil {
		return nil, fmt.Errorf("rtlsim: dcache: %w", err)
	}
	p := &Platform{cfg: cfg, pred: pred, icache: ic, dcache: dc}
	p.devices = []sim.Device{&sim.UART{}}
	if cfg.Ckpt != nil {
		cfg.Ckpt.SaveExtra = p.saveExtra
		cfg.Ckpt.RestoreExtra = p.restoreExtra
	}
	return p, nil
}

// Name implements sim.Platform.
func (p *Platform) Name() string { return "firesim" }

// CycleExact implements sim.Platform.
func (p *Platform) CycleExact() bool { return true }

// Cycles implements sim.Platform.
func (p *Platform) Cycles() uint64 { return p.cycles }

// Charge implements sim.Platform.
func (p *Platform) Charge(n uint64) { p.cycles += n }

// AddDevice implements sim.Platform.
func (p *Platform) AddDevice(d sim.Device) { p.devices = append(p.devices, d) }

// AddHook implements sim.Platform.
func (p *Platform) AddHook(h sim.MemHook) { p.hooks = append(p.hooks, h) }

// AddSyscall implements sim.Platform.
func (p *Platform) AddSyscall(fb sim.SyscallFallback) { p.fallbacks = append(p.fallbacks, fb) }

// Stats returns accumulated statistics.
func (p *Platform) Stats() Stats { return p.stats }

// Config returns the platform's timing configuration.
func (p *Platform) Config() Config { return p.cfg }

// extraState is the timing-model state a checkpoint carries beyond the
// machine's architectural state: everything charge() reads or writes.
type extraState struct {
	Pred   []byte
	ICache []byte
	DCache []byte
	Stats  Stats
}

// saveExtra serializes the timing model for a snapshot. Snapshots fire at
// batch boundaries, after every retired event has been charged, so the
// predictor is between branches (its Save precondition).
func (p *Platform) saveExtra() (map[string][]byte, error) {
	var st extraState
	var err error
	if st.Pred, err = p.pred.Save(); err != nil {
		return nil, fmt.Errorf("rtlsim: predictor: %w", err)
	}
	if st.ICache, err = p.icache.Save(); err != nil {
		return nil, fmt.Errorf("rtlsim: icache: %w", err)
	}
	if st.DCache, err = p.dcache.Save(); err != nil {
		return nil, fmt.Errorf("rtlsim: dcache: %w", err)
	}
	st.Stats = p.stats
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return map[string][]byte{"rtlsim": buf.Bytes()}, nil
}

// restoreExtra installs a snapshot's timing-model state wholesale. The
// platform must be configured identically to the one that saved.
func (p *Platform) restoreExtra(extra map[string][]byte) error {
	data, ok := extra["rtlsim"]
	if !ok {
		return fmt.Errorf("rtlsim: checkpoint carries no timing-model state")
	}
	var st extraState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("rtlsim: decoding timing-model state: %w", err)
	}
	if err := p.pred.Restore(st.Pred); err != nil {
		return fmt.Errorf("rtlsim: predictor: %w", err)
	}
	if err := p.icache.Restore(st.ICache); err != nil {
		return fmt.Errorf("rtlsim: icache: %w", err)
	}
	if err := p.dcache.Restore(st.DCache); err != nil {
		return fmt.Errorf("rtlsim: dcache: %w", err)
	}
	p.stats = st.Stats
	return nil
}

// Exec implements sim.Platform: run the executable cycle-exactly. With
// checkpointing enabled, execs a crashed attempt already completed replay
// from their records (charging the recorded cycles), and the crashed
// attempt's in-flight exec restores machine and timing-model state from
// its latest snapshot — the resumed run's cycle counts are bit-identical
// to an uninterrupted run's.
func (p *Platform) Exec(exe *isa.Executable, console io.Writer, args ...string) (*sim.ExecResult, error) {
	ck := p.cfg.Ckpt
	var sig string
	if ck != nil {
		if len(p.hooks) > 0 {
			return nil, fmt.Errorf("rtlsim: checkpointing is incompatible with memory hooks")
		}
		sig = checkpoint.ExecSig(exe.Entry, args)
		if rec, out, ok, err := ck.ReplayNext(sig); err != nil {
			return nil, fmt.Errorf("rtlsim: %w", err)
		} else if ok {
			if console != nil {
				if _, err := console.Write(out); err != nil {
					return nil, err
				}
			}
			// Statistics are not re-derived here: the in-flight restore
			// that always follows replay installs them wholesale.
			p.cycles += rec.Cycles
			return &sim.ExecResult{Exit: rec.Exit, Instrs: rec.Instrs, Cycles: rec.Cycles}, nil
		}
	}

	m := sim.NewMachine()
	m.Console = console
	m.Devices = p.devices
	m.Hooks = p.hooks
	fbs := make([]func(*sim.Machine, uint64) (bool, error), len(p.fallbacks))
	for i, fb := range p.fallbacks {
		fbs[i] = fb
	}
	m.SyscallFn = sim.BareSyscalls(fbs...)
	m.MaxInstrs = p.cfg.MaxInstrs
	if p.cfg.FaultMask != 0 {
		faultOp := p.cfg.FaultOp
		if faultOp == isa.OpInvalid {
			faultOp = isa.OpMUL
		}
		mask := p.cfg.FaultMask
		m.TamperFn = func(pc uint64, op isa.Op, rd uint64) uint64 {
			if op == faultOp {
				return rd | mask
			}
			return rd
		}
	}
	m.LoadExecutable(exe, sim.DefaultStackTop)
	sim.SetupArgv(m, args)

	// Baselines predate BeginExec: a restore advances Instret and Now to
	// the snapshot boundary, and the deltas below must span the whole exec.
	startCycles := p.cycles
	startInstrs := m.Instret
	m.Now = p.cycles
	m.Stop = p.cfg.Stop
	if ck != nil {
		w, _, err := ck.BeginExec(sig, m, console)
		if err != nil {
			return nil, fmt.Errorf("rtlsim: %w", err)
		}
		m.Console = w
	}
	// Metric shards attach after any restore, so a resumed exec reports
	// only instructions it actually simulates; RunBatch flushes them once
	// per batch.
	m.AttachObs(p.cfg.Obs.Counter("sim_rtlsim_instrs_total").Shard(),
		p.cfg.Obs.Counter("sim_rtlsim_cycles_total").Shard())
	wallStart := time.Now()
	// Batched stepping: the machine retires up to len(evs) instructions
	// per call, charging the timing model after each one. Event order and
	// charge order are identical to per-step simulation, so cycle counts
	// stay bit-exact; the batch only amortizes loop bookkeeping.
	evs := make([]sim.Event, batchSize)
	for !m.Halted {
		if m.Interrupted() {
			p.cycles = m.Now
			return nil, fmt.Errorf("rtlsim: %w", sim.ErrStopped)
		}
		if _, err := m.RunBatch(evs, p.charge); err != nil {
			p.cycles = m.Now
			return nil, fmt.Errorf("rtlsim: %w", err)
		}
	}
	p.cycles = m.Now
	instrs := m.Instret - startInstrs
	cycles := p.cycles - startCycles
	// A 0-duration exec produces +Inf here; Gauge.Set clamps it to 0.
	p.cfg.Obs.Gauge("sim_rtlsim_mips").Set(float64(instrs) / time.Since(wallStart).Seconds() / 1e6)
	p.stats.Instrs += instrs
	p.stats.Cycles += cycles
	if ck != nil {
		if err := ck.FinishExec(m.ExitCode, instrs, cycles); err != nil {
			return nil, fmt.Errorf("rtlsim: %w", err)
		}
	}
	return &sim.ExecResult{Exit: m.ExitCode, Instrs: instrs, Cycles: cycles}, nil
}

// charge computes the cycle cost of one executed instruction.
func (p *Platform) charge(ev *sim.Event) uint64 {
	cost := uint64(1)

	// Instruction fetch.
	if p.icache.Access(ev.PC) {
		p.stats.ICacheHits++
	} else {
		p.stats.ICacheMisses++
		cost += p.cfg.ICacheMissPenalty
	}

	op := ev.Instr.Op
	switch {
	case op.IsBranch():
		p.stats.Branches++
		pred := p.pred.Predict(ev.PC)
		p.pred.Update(ev.PC, ev.Taken)
		if pred != ev.Taken {
			p.stats.Mispredicts++
			cost += p.cfg.BranchMissPenalty
		}
	case op == isa.OpJALR:
		cost += p.cfg.JalrPenalty
	case op.IsLoad() || op.IsStore():
		if ev.MMIO {
			p.stats.MMIOAccesses++
			cost += p.cfg.MMIOLatency
		} else if p.dcache.Access(ev.MemAddr) {
			p.stats.DCacheHits++
		} else {
			p.stats.DCacheMisses++
			cost += p.cfg.DCacheMissPenalty
		}
	case op.IsMul():
		cost += p.cfg.MulLatency - 1
	case op.IsMulDiv():
		cost += p.cfg.DivLatency - 1
	}
	if ev.Syscall {
		p.stats.Syscalls++
		cost += p.cfg.SyscallPenalty
	}
	// Device/hook-imposed stall cycles (e.g. a remote page fetch).
	cost += ev.Extra
	return cost
}

// SecondsAt converts cycles to seconds at the configured frequency.
func (p *Platform) SecondsAt(cycles uint64) float64 {
	return float64(cycles) / (float64(p.cfg.FreqMHz) * 1e6)
}

// SetPredictor swaps the branch predictor, supporting ablation studies
// that sweep predictor configurations beyond the named presets.
func (p *Platform) SetPredictor(pred bpred.Predictor) { p.pred = pred }
