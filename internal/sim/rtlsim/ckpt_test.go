package rtlsim

import (
	"bytes"
	"path/filepath"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/cas"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/sim"
)

const ckptProgShort = `
_start:
    li a0, 42
    li a7, 0x101
    ecall
    li a0, 3
    li a7, 93
    ecall
`

const ckptProgLong = `
_start:
    li s0, 2000
    li s1, 0
    li s2, 0x100000
outer:
    andi t0, s0, 255
    slli t1, t0, 3
    add  t2, s2, t1
    sd   s1, 0(t2)
    ld   t3, 0(t2)
    add  s1, s1, t3
    mul  s1, s1, s0
    addi s0, s0, -1
    bnez s0, outer
    mv a0, s1
    li a7, 0x101
    ecall
    li a0, 7
    li a7, 93
    ecall
`

// ckptAttempt drives the two execs of a simulated node through one
// platform, mimicking how guestos issues Platform.Exec calls. maxInstrs
// bounds each exec so a small value kills the long exec mid-flight after
// several snapshots — the deterministic stand-in for a host crash.
func ckptAttempt(t *testing.T, store *cas.Store, ptrDir string, resume bool, maxInstrs uint64) (*Platform, []*sim.ExecResult, string, bool) {
	t.Helper()
	rt, err := checkpoint.Open(checkpoint.Config{Store: store, Dir: ptrDir, Job: "node0", Every: 1000}, resume)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Ckpt = rt
	cfg.MaxInstrs = maxInstrs
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var console bytes.Buffer
	var results []*sim.ExecResult
	for _, src := range []string{ckptProgShort, ckptProgLong} {
		exe, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Exec(exe, &console, "prog")
		if err != nil {
			// The bounded attempt dying mid-exec is the simulated crash.
			return p, results, console.String(), true
		}
		results = append(results, res)
	}
	return p, results, console.String(), false
}

// TestCrashResumeCycleExact is the cycle-exact half of the tentpole's
// determinism gate: a node killed mid-exec (after a completed exec and
// several checkpoints) and resumed produces bit-identical per-exec cycle
// counts, timing statistics, and console output.
func TestCrashResumeCycleExact(t *testing.T) {
	dir := t.TempDir()
	store, err := cas.Open(filepath.Join(dir, "cas"))
	if err != nil {
		t.Fatal(err)
	}
	ptrDir := filepath.Join(dir, "ckpt")

	// Uninterrupted reference run (its own pointer dir, cleared after).
	straightP, straightRes, straightConsole, crashed := ckptAttempt(t, store, filepath.Join(dir, "ref-ckpt"), false, 0)
	if crashed || len(straightRes) != 2 {
		t.Fatalf("reference run did not complete: %d execs", len(straightRes))
	}

	// Crashed attempt: exec0 completes, exec1 dies at 5000 instructions
	// with checkpoints at 1000..4000.
	_, partial, _, crashed := ckptAttempt(t, store, ptrDir, false, 5000)
	if !crashed || len(partial) != 1 {
		t.Fatalf("bounded attempt: crashed=%v after %d execs, want crash after 1", crashed, len(partial))
	}
	ptr, err := checkpoint.LoadPointer(checkpoint.PointerPath(ptrDir, "node0"))
	if err != nil {
		t.Fatalf("no checkpoint pointer after crash: %v", err)
	}
	if ptr.Exec != 1 {
		t.Fatalf("pointer targets exec %d, want 1", ptr.Exec)
	}

	// Resume: exec0 replays, exec1 restores and finishes.
	resumedP, resumedRes, resumedConsole, crashed := ckptAttempt(t, store, ptrDir, true, 0)
	if crashed || len(resumedRes) != 2 {
		t.Fatalf("resumed run did not complete: %d execs", len(resumedRes))
	}

	for i := range straightRes {
		if *resumedRes[i] != *straightRes[i] {
			t.Errorf("exec %d: resumed %+v, straight %+v", i, *resumedRes[i], *straightRes[i])
		}
	}
	if resumedP.Cycles() != straightP.Cycles() {
		t.Errorf("platform cycles %d, want %d", resumedP.Cycles(), straightP.Cycles())
	}
	if resumedP.Stats() != straightP.Stats() {
		t.Errorf("timing stats diverge:\nresumed  %+v\nstraight %+v", resumedP.Stats(), straightP.Stats())
	}
	if resumedConsole != straightConsole {
		t.Errorf("console = %q, want %q", resumedConsole, straightConsole)
	}
}
