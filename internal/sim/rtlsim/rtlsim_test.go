package rtlsim

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/funcsim"
)

func build(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

const sumProgram = `
_start:
    li t0, 0
    li t1, 1
    li t2, 10001
loop:
    add t0, t0, t1
    addi t1, t1, 1
    bne t1, t2, loop
    mv a0, t0
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`

func TestExecMatchesFunctional(t *testing.T) {
	exe := build(t, sumProgram)
	rtl, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var rtlOut, funcOut bytes.Buffer
	rtlRes, err := rtl.Exec(exe, &rtlOut)
	if err != nil {
		t.Fatal(err)
	}
	fp := funcsim.New(funcsim.Config{})
	funcRes, err := fp.Exec(exe, &funcOut)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core guarantee: identical artifacts produce identical
	// functional behaviour on both simulators.
	if rtlOut.String() != funcOut.String() {
		t.Errorf("console differs: rtl=%q func=%q", rtlOut.String(), funcOut.String())
	}
	if rtlRes.Exit != funcRes.Exit || rtlRes.Instrs != funcRes.Instrs {
		t.Errorf("results differ: rtl=%+v func=%+v", rtlRes, funcRes)
	}
	if !strings.Contains(rtlOut.String(), "50005000") {
		t.Errorf("wrong sum: %q", rtlOut.String())
	}
	// Cycle-exact run must cost more cycles than instructions.
	if rtlRes.Cycles <= rtlRes.Instrs {
		t.Errorf("cycles (%d) should exceed instrs (%d)", rtlRes.Cycles, rtlRes.Instrs)
	}
}

func TestDeterministicCycles(t *testing.T) {
	exe := build(t, sumProgram)
	run := func() uint64 {
		p, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1, c2, c3 := run(), run(), run()
	if c1 != c2 || c2 != c3 {
		t.Errorf("cycle counts differ across runs: %d %d %d", c1, c2, c3)
	}
}

func TestBranchPredictorAffectsCycles(t *testing.T) {
	// A branch pattern with period 64 (random-ish), diluted by an inner
	// always-taken loop: TAGE should finish in fewer cycles than bimodal.
	src := `
_start:
    li s0, 0          # i
    li s1, 20000      # iterations
    la s2, pattern
outer:
    andi t0, s0, 63
    add t1, s2, t0
    lbu t2, 0(t1)
    beqz t2, skip     # the hard-to-predict branch
    addi s3, s3, 1
skip:
    addi s0, s0, 1
    blt s0, s1, outer
    li a0, 0
    li a7, 93
    ecall
.data
pattern:
    .byte 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1
    .byte 0, 1, 1, 0, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 1, 0
    .byte 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0
    .byte 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 1
`
	exe := build(t, src)
	cycles := map[string]uint64{}
	for _, predName := range []string{"bimodal", "gshare", "tage"} {
		cfg := DefaultConfig()
		cfg.Predictor = predName
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		cycles[predName] = res.Cycles
		st := p.Stats()
		if st.Branches == 0 {
			t.Fatal("no branches counted")
		}
	}
	if cycles["tage"] >= cycles["bimodal"] {
		t.Errorf("tage (%d cycles) should beat bimodal (%d cycles)", cycles["tage"], cycles["bimodal"])
	}
}

func TestCacheMissesCostCycles(t *testing.T) {
	// Streaming over a large array (strided by a full line) thrashes the
	// 16KiB D$; the same count of cache-friendly accesses is much cheaper.
	mkSrc := func(stride int) string {
		return `
_start:
    li s0, 0
    li s1, 8192       # accesses
    la s2, buf
    li s3, ` + strconv.Itoa(stride) + `
    mv t1, s2
loop:
    ld t0, 0(t1)
    add t1, t1, s3
    li t2, 524288
    blt t1, t2, noreset
    mv t1, s2
noreset:
    addi s0, s0, 1
    blt s0, s1, loop
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 8
`
	}
	run := func(src string) (uint64, Stats) {
		exe := build(t, src)
		p, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, p.Stats()
	}
	hot, hotStats := run(mkSrc(0))    // same address every time
	cold, coldStats := run(mkSrc(64)) // new line every time
	if cold <= hot {
		t.Errorf("cold-stride run (%d) should cost more than hot run (%d)", cold, hot)
	}
	if coldStats.DCacheMisses <= hotStats.DCacheMisses {
		t.Errorf("miss counts: cold=%d hot=%d", coldStats.DCacheMisses, hotStats.DCacheMisses)
	}
}

func TestMMIOCharged(t *testing.T) {
	src := `
.equ UART, 0x54000000
_start:
    li t0, UART
    li t1, 'x'
    sb t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
`
	exe := build(t, src)
	p, _ := New(DefaultConfig())
	var out bytes.Buffer
	if _, err := p.Exec(exe, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "x" {
		t.Errorf("uart output %q", out.String())
	}
	if p.Stats().MMIOAccesses != 1 {
		t.Errorf("MMIO accesses = %d", p.Stats().MMIOAccesses)
	}
}

func TestMulDivLatency(t *testing.T) {
	mk := func(op string) uint64 {
		src := "_start:\n"
		for i := 0; i < 100; i++ {
			src += "    " + op + " t0, t1, t2\n"
		}
		src += "    li a0, 0\n    li a7, 93\n    ecall\n"
		exe := build(t, src)
		p, _ := New(DefaultConfig())
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	addC, mulC, divC := mk("add"), mk("mul"), mk("div")
	if !(divC > mulC && mulC > addC) {
		t.Errorf("latency ordering violated: add=%d mul=%d div=%d", addC, mulC, divC)
	}
}

func TestStatsAccumulateAcrossExecs(t *testing.T) {
	exe := build(t, "_start:\n    li a0, 0\n    li a7, 93\n    ecall\n")
	p, _ := New(DefaultConfig())
	p.Exec(exe, io.Discard)
	first := p.Stats().Instrs
	p.Exec(exe, io.Discard)
	if p.Stats().Instrs != 2*first {
		t.Errorf("stats did not accumulate: %d then %d", first, p.Stats().Instrs)
	}
	if p.Cycles() == 0 {
		t.Error("platform clock did not advance")
	}
}

func TestRdcycleSeesPlatformClock(t *testing.T) {
	src := `
_start:
    rdcycle a0
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`
	exe := build(t, src)
	p, _ := New(DefaultConfig())
	p.Charge(5000) // modeled boot overhead before user code
	var out bytes.Buffer
	p.Exec(exe, &out)
	v, err := strconv.Atoi(strings.TrimSpace(out.String()))
	if err != nil || v < 5000 {
		t.Errorf("rdcycle = %q, want >= 5000", out.String())
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = "oracle"
	if _, err := New(cfg); err == nil {
		t.Error("expected error for unknown predictor")
	}
	cfg = DefaultConfig()
	cfg.ICache.LineBytes = 48
	if _, err := New(cfg); err == nil {
		t.Error("expected error for bad cache config")
	}
}

func TestIPCAndMispredictRate(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 {
		t.Error("zero stats should not divide by zero")
	}
	s = Stats{Cycles: 200, Instrs: 100, Branches: 50, Mispredicts: 5}
	if s.IPC() != 0.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if s.MispredictRate() != 0.1 {
		t.Errorf("mispredict rate = %f", s.MispredictRate())
	}
}

func TestSecondsAt(t *testing.T) {
	p, _ := New(DefaultConfig())
	if got := p.SecondsAt(1_000_000_000); got != 1.0 {
		t.Errorf("1G cycles at 1GHz = %f s", got)
	}
}

// Device returning extra stall cycles must lengthen execution.
type stallDevice struct{ stall uint64 }

func (d *stallDevice) Name() string           { return "stall" }
func (d *stallDevice) Contains(a uint64) bool { return a >= 0x60000000 && a < 0x60001000 }
func (d *stallDevice) Load(m *sim.Machine, a uint64, s int) (uint64, uint64, error) {
	return 0, d.stall, nil
}
func (d *stallDevice) Store(m *sim.Machine, a uint64, s int, v uint64) (uint64, error) {
	return d.stall, nil
}

func TestDeviceStallCycles(t *testing.T) {
	src := `
_start:
    li t0, 0x60000000
    ld t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
`
	exe := build(t, src)
	run := func(stall uint64) uint64 {
		p, _ := New(DefaultConfig())
		p.AddDevice(&stallDevice{stall: stall})
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast, slow := run(0), run(1000)
	if slow-fast != 1000 {
		t.Errorf("stall cycles not charged exactly: fast=%d slow=%d", fast, slow)
	}
}

// Property: for random straight-line programs, functional and cycle-exact
// execution retire the same instructions with identical outputs, and the
// cycle count is never below the instruction count.
func TestQuickRandomProgramsEquivalent(t *testing.T) {
	mnems := []string{
		"add", "sub", "and", "or", "xor", "sll", "srl", "sra",
		"mul", "mulh", "div", "rem", "slt", "sltu",
		"addw", "subw", "mulw", "divw", "remw", "sllw", "srlw", "sraw",
	}
	regs := []string{"t0", "t1", "t2", "t3", "s2", "s3", "s4"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		var src strings.Builder
		src.WriteString("_start:\n")
		for i, r := range regs {
			fmt.Fprintf(&src, "    li %s, %d\n", r, rng.Int63n(1<<40)-(1<<39)+int64(i))
		}
		n := rng.Intn(200) + 20
		for i := 0; i < n; i++ {
			m := mnems[rng.Intn(len(mnems))]
			rd := regs[rng.Intn(len(regs))]
			rs1 := regs[rng.Intn(len(regs))]
			rs2 := regs[rng.Intn(len(regs))]
			fmt.Fprintf(&src, "    %s %s, %s, %s\n", m, rd, rs1, rs2)
		}
		// Print a digest of the register state and exit.
		src.WriteString("    xor a0, t0, t1\n    xor a0, a0, t2\n    xor a0, a0, s2\n")
		src.WriteString("    li a7, 0x101\n    ecall\n    li a0, 0\n    li a7, 93\n    ecall\n")

		exe := build(t, src.String())
		var fOut, rOut bytes.Buffer
		fp := funcsim.New(funcsim.Config{})
		fRes, err := fp.Exec(exe, &fOut)
		if err != nil {
			t.Fatalf("trial %d functional: %v", trial, err)
		}
		rp, _ := New(DefaultConfig())
		rRes, err := rp.Exec(exe, &rOut)
		if err != nil {
			t.Fatalf("trial %d rtl: %v", trial, err)
		}
		if fOut.String() != rOut.String() {
			t.Fatalf("trial %d outputs differ: %q vs %q\nprogram:\n%s", trial, fOut.String(), rOut.String(), src.String())
		}
		if fRes.Instrs != rRes.Instrs {
			t.Fatalf("trial %d instr counts differ: %d vs %d", trial, fRes.Instrs, rRes.Instrs)
		}
		if rRes.Cycles < rRes.Instrs {
			t.Fatalf("trial %d: cycles (%d) below instrs (%d)", trial, rRes.Cycles, rRes.Instrs)
		}
	}
}
