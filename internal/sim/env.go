package sim

import (
	"fmt"
	"strconv"
)

// Standard guest syscall numbers. The numbers follow the Linux RISC-V ABI
// where an equivalent exists, plus a few platform calls in the 0x100 range
// (the role the HTIF/SBI debug interface plays on real RISC-V systems).
const (
	SysWrite = 64
	SysExit  = 93
	// SysPutInt prints a0 as a signed decimal to the console.
	SysPutInt = 0x101
	// SysPutChar prints the low byte of a0.
	SysPutChar = 0x102
	// SysGetCycle returns the current cycle in a0 (same as rdcycle).
	SysGetCycle = 0x103
)

// Registers by ABI name, for readability in environment code.
const (
	RegA0 = 10
	RegA1 = 11
	RegA2 = 12
	RegA7 = 17
)

// BareSyscalls returns the proxy-kernel style syscall handler used for
// bare-metal workloads (§IV-A: "tests were implemented either completely
// bare metal or in the RISC-V proxy kernel"). Unknown syscall numbers can be
// delegated to fallback handlers, which is how platform devices (PFA golden
// model, accelerators) extend the environment.
func BareSyscalls(fallbacks ...func(m *Machine, num uint64) (bool, error)) func(m *Machine) error {
	return func(m *Machine) error {
		num := m.Regs[RegA7]
		switch num {
		case SysExit:
			m.Halted = true
			m.ExitCode = int64(m.Regs[RegA0])
			return nil
		case SysWrite:
			addr, n := m.Regs[RegA1], m.Regs[RegA2]
			if n > 1<<20 {
				return m.trapf("write length %d too large", n)
			}
			data := m.Mem.ReadBytes(addr, int(n))
			if _, err := m.Console.Write(data); err != nil {
				return err
			}
			m.Regs[RegA0] = n
			return nil
		case SysPutInt:
			s := strconv.FormatInt(int64(m.Regs[RegA0]), 10)
			_, err := m.Console.Write([]byte(s))
			return err
		case SysPutChar:
			_, err := m.Console.Write([]byte{byte(m.Regs[RegA0])})
			return err
		case SysGetCycle:
			m.Regs[RegA0] = m.Now
			return nil
		default:
			for _, fb := range fallbacks {
				handled, err := fb(m, num)
				if err != nil {
					return err
				}
				if handled {
					return nil
				}
			}
			return m.trapf("unknown syscall %d", num)
		}
	}
}

// UART is the serial console device. Stores to its data register emit a
// byte on the machine console; loads report an always-ready status.
type UART struct {
	Base uint64
}

// UARTBase is the platform's conventional UART address.
const UARTBase = 0x54000000

// Name implements Device.
func (u *UART) Name() string { return "uart0" }

// Contains implements Device.
func (u *UART) Contains(addr uint64) bool {
	base := u.Base
	if base == 0 {
		base = UARTBase
	}
	return addr >= base && addr < base+16
}

// AddrRange implements AddrRanger so the machine can index the UART.
func (u *UART) AddrRange() (uint64, uint64) {
	base := u.Base
	if base == 0 {
		base = UARTBase
	}
	return base, base + 16
}

// Load implements Device: reading any UART register returns "TX ready".
func (u *UART) Load(m *Machine, addr uint64, size int) (uint64, uint64, error) {
	return 1, 0, nil
}

// Store implements Device: a store to the base register transmits a byte.
func (u *UART) Store(m *Machine, addr uint64, size int, val uint64) (uint64, error) {
	base := u.Base
	if base == 0 {
		base = UARTBase
	}
	if addr == base {
		if _, err := m.Console.Write([]byte{byte(val)}); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// DefaultStackTop is where the stack pointer starts for loaded programs.
const DefaultStackTop = 0x8000000

// RunFunctional executes the machine until it halts, advancing one cycle
// per instruction — the functional simulator's notion of time. It returns
// the number of retired instructions.
//
// When no hooks, trace writer, or tamper function are installed it takes
// the event-free fast loop (see fastpath.go); otherwise it falls back to
// the reference loop. Both produce identical architectural state.
func RunFunctional(m *Machine) (uint64, error) {
	if len(m.Hooks) == 0 && m.Trace == nil && m.TamperFn == nil {
		start := m.Instret
		err := m.runFast()
		return m.Instret - start, err
	}
	return RunReference(m)
}

// RunReference executes the machine until it halts using only the
// reference StepInto path — the semantics every fast path is differentially
// tested against. It advances one cycle per instruction, like
// RunFunctional.
func RunReference(m *Machine) (uint64, error) {
	start := m.Instret
	defer m.flushObs()
	var ev Event
	for !m.Halted {
		// Poll the cooperative kill switch every 8Ki instructions; with no
		// Stop channel installed this is a nil check per instruction. The
		// same cadence flushes metric shards so scrapes see progress.
		if m.Instret&0x1fff == 0 {
			m.flushObs()
			if m.Stop != nil && m.Interrupted() {
				return m.Instret - start, ErrStopped
			}
		}
		if err := m.StepInto(&ev); err != nil {
			return m.Instret - start, err
		}
		m.Now++
		// Checkpoint boundaries land at the same retired-instruction
		// counts the fast loop stops at; with checkpointing off this is
		// one predicate per instruction.
		if m.CkptEvery != 0 {
			if err := m.maybeCheckpoint(); err != nil {
				return m.Instret - start, err
			}
		}
	}
	return m.Instret - start, nil
}

// FormatRegs renders the register file for debugging output.
func FormatRegs(m *Machine) string {
	out := ""
	for i := 0; i < 32; i += 4 {
		for j := i; j < i+4; j++ {
			out += fmt.Sprintf("x%-2d=%016x ", j, m.Regs[j])
		}
		out += "\n"
	}
	return out
}

// ArgvBase is where Exec places guest argv data.
const ArgvBase = 0x7f00000

// SetupArgv writes argc/argv into guest memory following the RISC-V bare
// calling convention used by the proxy kernel: a0 = argc, a1 = argv
// (pointer to a NULL-terminated array of C-string pointers).
func SetupArgv(m *Machine, args []string) {
	ptrs := make([]uint64, 0, len(args)+1)
	cursor := uint64(ArgvBase) + uint64(8*(len(args)+1))
	for _, arg := range args {
		ptrs = append(ptrs, cursor)
		m.Mem.WriteBytes(cursor, append([]byte(arg), 0))
		cursor += uint64(len(arg)) + 1
	}
	ptrs = append(ptrs, 0)
	for i, p := range ptrs {
		m.Mem.Write(uint64(ArgvBase)+uint64(8*i), 8, p)
	}
	m.Regs[RegA0] = uint64(len(args))
	m.Regs[RegA1] = ArgvBase
}
