package sim

import "testing"

// TestWOperations verifies RV64 W-suffix semantics: 32-bit operation,
// result sign-extended to 64 bits.
func TestWOperations(t *testing.T) {
	_, code := run(t, `
_start:
    # addw overflow wraps at 32 bits and sign-extends:
    # 0x7fffffff + 1 = 0x80000000 -> sign-extends to 0xffffffff80000000
    li t0, 0x7fffffff
    li t1, 1
    addw t2, t0, t1
    li t3, -0x80000000
    bne t2, t3, fail
    # subw: 0 - 1 = -1
    subw t2, zero, t1
    li t3, -1
    bne t2, t3, fail
    # sllw discards bits shifted past 31: 0x40000000 << 1 -> 0x80000000 (neg)
    li t0, 0x40000000
    sllw t2, t0, t1
    li t3, -0x80000000
    bne t2, t3, fail
    # srlw is a 32-bit logical shift: 0xffffffff >> 4 = 0x0fffffff
    li t0, 0xffffffff
    li t1, 4
    srlw t2, t0, t1
    li t3, 0x0fffffff
    bne t2, t3, fail
    # sraw keeps the 32-bit sign: 0x80000000 >> 4 (as int32) = 0xf8000000
    li t0, 0x80000000
    sraw t2, t0, t1
    li t3, -0x08000000
    bne t2, t3, fail
    # addiw truncates then sign-extends: 0x100000000 + 0 = 0
    li t0, 0x100000000
    addiw t2, t0, 0
    bnez t2, fail
    # sext.w pseudo
    li t0, 0xffffffff
    sext.w t2, t0
    li t3, -1
    bne t2, t3, fail
    # mulw wraps at 32 bits: 0x10000 * 0x10000 = 0 (mod 2^32)
    li t0, 0x10000
    mulw t2, t0, t0
    bnez t2, fail
    # divw/remw edge: INT32_MIN / -1
    li t0, -0x80000000
    li t1, -1
    divw t2, t0, t1
    bne t2, t0, fail
    remw t2, t0, t1
    bnez t2, fail
    # divw by zero -> -1; remw by zero -> dividend
    divw t2, t0, zero
    li t3, -1
    bne t2, t3, fail
    remw t2, t0, zero
    bne t2, t0, fail
    # divuw: 0xffffffff / 2 = 0x7fffffff
    li t0, 0xffffffff
    li t1, 2
    divuw t2, t0, t1
    li t3, 0x7fffffff
    bne t2, t3, fail
    # remuw by zero -> sign-extended dividend
    remuw t2, t0, zero
    li t3, -1
    bne t2, t3, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
`)
	if code != 0 {
		t.Errorf("W-op semantics failed (exit %d)", code)
	}
}
