package sim

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"firemarshal/internal/asm"
)

// ckptProg mixes ALU work, loads, stores (dirtying several pages), and
// console syscalls so checkpoints exercise memory capture and the
// boundary logic across ~18k retired instructions.
const ckptProg = `
_start:
    li s0, 2000
    li s1, 0
    li s2, 0x100000
outer:
    andi t0, s0, 255
    slli t1, t0, 3
    add  t2, s2, t1
    sd   s1, 0(t2)
    ld   t3, 0(t2)
    add  s1, s1, t3
    mul  s1, s1, s0
    addi s0, s0, -1
    bnez s0, outer
    mv a0, s1
    li a7, 0x101
    ecall
    li a0, 7
    li a7, 93
    ecall
`

// ckptObs is one observed checkpoint: the architectural state plus a
// digest of all mapped memory.
type ckptObs struct {
	arch    ArchState
	memHash [32]byte
}

func observeCkpts(t *testing.T, every uint64, drive func(m *Machine) error) ([]ckptObs, *Machine) {
	t.Helper()
	exe, err := asm.Assemble(ckptProg, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Console = &bytes.Buffer{}
	m.SyscallFn = BareSyscalls()
	m.Devices = []Device{&UART{}}
	m.MaxInstrs = 10_000_000
	m.LoadExecutable(exe, DefaultStackTop)
	var obs []ckptObs
	m.CkptEvery = every
	m.CkptFn = func(mm *Machine) error {
		h := sha256.New()
		for _, pn := range mm.Mem.PageNumbers() {
			h.Write(mm.Mem.PageBytes(pn))
		}
		var o ckptObs
		o.arch = mm.SaveArch()
		copy(o.memHash[:], h.Sum(nil))
		obs = append(obs, o)
		return nil
	}
	if err := drive(m); err != nil {
		t.Fatalf("drive: %v", err)
	}
	return obs, m
}

// TestCheckpointBoundariesEquivalent locks the tentpole's determinism
// claim at the sim layer: the fast loop, the reference loop, and the
// batched cycle-exact loop all surface at the same retired-instruction
// boundaries with identical architectural state and memory.
func TestCheckpointBoundariesEquivalent(t *testing.T) {
	const every = 1000
	fast, mFast := observeCkpts(t, every, func(m *Machine) error {
		_, err := RunFunctional(m)
		return err
	})
	ref, mRef := observeCkpts(t, every, func(m *Machine) error {
		_, err := RunReference(m)
		return err
	})
	batch, mBatch := observeCkpts(t, every, func(m *Machine) error {
		evs := make([]Event, 512)
		for !m.Halted {
			if _, err := m.RunBatch(evs, nil); err != nil {
				return err
			}
		}
		return nil
	})

	if len(fast) == 0 {
		t.Fatal("no checkpoints fired")
	}
	for name, got := range map[string][]ckptObs{"reference": ref, "batch": batch} {
		if len(got) != len(fast) {
			t.Fatalf("%s path fired %d checkpoints, fast fired %d", name, len(got), len(fast))
		}
		for i := range got {
			if got[i] != fast[i] {
				t.Fatalf("%s checkpoint %d diverges:\nfast %+v\n%s %+v", name, i, fast[i].arch, name, got[i].arch)
			}
		}
	}
	for i, o := range fast {
		if want := uint64(every * (i + 1)); o.arch.Instret != want {
			t.Errorf("checkpoint %d at instret %d, want %d", i, o.arch.Instret, want)
		}
	}
	if mFast.Snap() != mRef.Snap() || mFast.Snap() != mBatch.Snap() {
		t.Error("final snapshots diverge across paths")
	}
}

// TestCheckpointRestoreResumes snapshots mid-run, rebuilds a fresh
// machine from the snapshot, and checks the resumed execution is
// bit-identical to the uninterrupted run: same exit, same counters, same
// console suffix.
func TestCheckpointRestoreResumes(t *testing.T) {
	exe, err := asm.Assemble(ckptProg, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newMachine := func() (*Machine, *bytes.Buffer) {
		m := NewMachine()
		var console bytes.Buffer
		m.Console = &console
		m.SyscallFn = BareSyscalls()
		m.Devices = []Device{&UART{}}
		m.MaxInstrs = 10_000_000
		m.LoadExecutable(exe, DefaultStackTop)
		return m, &console
	}

	// Straight run, capturing the snapshot at the 5th boundary.
	straight, straightConsole := newMachine()
	const every = 1000
	var snapArch ArchState
	snapPages := map[uint64][]byte{}
	var snapConsoleLen int
	straight.CkptEvery = every
	straight.CkptFn = func(m *Machine) error {
		if m.Instret != 5*every {
			return nil
		}
		snapArch = m.SaveArch()
		for _, pn := range m.Mem.PageNumbers() {
			snapPages[pn] = append([]byte(nil), m.Mem.PageBytes(pn)...)
		}
		snapConsoleLen = straightConsole.Len()
		return nil
	}
	if _, err := RunFunctional(straight); err != nil {
		t.Fatal(err)
	}
	if snapArch.Instret != 5*every {
		t.Fatal("mid-run snapshot never captured")
	}

	// Fresh machine, restored from the snapshot, run to completion.
	resumed, resumedConsole := newMachine()
	resumed.Mem.Reset()
	for pn, data := range snapPages {
		if err := resumed.Mem.SetPage(pn, data); err != nil {
			t.Fatal(err)
		}
	}
	resumed.RestoreArch(snapArch)
	if _, err := RunFunctional(resumed); err != nil {
		t.Fatal(err)
	}

	if resumed.ExitCode != straight.ExitCode {
		t.Errorf("exit = %d, want %d", resumed.ExitCode, straight.ExitCode)
	}
	if resumed.Snap() != straight.Snap() {
		t.Errorf("final snapshot diverges:\nresumed  %+v\nstraight %+v", resumed.Snap(), straight.Snap())
	}
	if resumed.Now != straight.Now {
		t.Errorf("cycles = %d, want %d", resumed.Now, straight.Now)
	}
	wantSuffix := straightConsole.String()[snapConsoleLen:]
	if resumedConsole.String() != wantSuffix {
		t.Errorf("console suffix = %q, want %q", resumedConsole.String(), wantSuffix)
	}
}

func TestMemoryDirtyTracking(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0xdead)
	m.Write(0x1008, 8, 0xbeef) // same page, TLB-resident dirty hit
	m.Write(0x5000, 1, 1)
	d := m.TakeDirty()
	if len(d) != 2 {
		t.Fatalf("dirty = %v, want pages 1 and 5", d)
	}
	if _, ok := d[0x1]; !ok {
		t.Error("page 0x1 not marked dirty")
	}
	if len(m.TakeDirty()) != 0 {
		t.Error("dirty set not reset")
	}
	// A write through a still-resident TLB entry must re-mark the page.
	m.Write(0x1010, 8, 7)
	if _, ok := m.TakeDirty()[0x1]; !ok {
		t.Error("TLB-resident page not re-marked after TakeDirty")
	}
	// Reads never dirty.
	m.Read(0x1000, 8)
	if len(m.TakeDirty()) != 0 {
		t.Error("read marked a page dirty")
	}
}
