package sim

import (
	"bytes"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

// smcInsideTraceProg builds a hot loop (well past hotThreshold), then at
// iteration 40 stores a new instruction word over the loop body — from
// inside the compiled superblock itself, since the store sits on the
// trace's fall-through path. The patched word changes `addi s11, s11, 1`
// (0x00158593-style) into `addi s11, s11, 2` (0x002d8d93), so the
// checksum proves the rewritten instruction really executed afterwards.
const smcInsideTraceProg = `
_start:
    li s0, 0
    li s1, 64
    li s11, 0
    la t1, k_site
    li t2, 40
    li t3, 0x002d8d93     # addi s11, s11, 2
k_loop:
k_site:
    addi s11, s11, 1      # rewritten mid-run
    addi s0, s0, 1
    bne s0, t2, k_next
    sw t3, 0(t1)          # executes from inside the superblock
k_next:
    slt t0, s0, s1
    bnez t0, k_loop
    andi a0, s11, 255
    li a7, 93
    ecall
`

// smcAtGuardProg rewrites the trace's own closing guard: the backward
// bnez that a fused slt+bnez compare-and-branch op guards on becomes a
// nop at iteration 40, so the loop falls through immediately after the
// patch instead of running to s1.
const smcAtGuardProg = `
_start:
    li s0, 0
    li s1, 100
    la t1, g_br
    li t2, 0x00000013     # addi x0, x0, 0 (nop)
    li t3, 40
g_loop:
    addi s0, s0, 1
    bne s0, t3, g_skip
    sw t2, 0(t1)          # rewrite the guard branch itself
g_skip:
    slt t0, s0, s1
g_br:
    bnez t0, g_loop
    andi a0, s0, 255
    li a7, 93
    ecall
`

// TestDiffSMCInsideTrace locks fast ≡ reference when self-modifying code
// rewrites an instruction inside a built superblock, with the store
// retiring from within the trace it invalidates.
func TestDiffSMCInsideTrace(t *testing.T) { diffRun(t, smcInsideTraceProg) }

// TestDiffSMCAtGuard locks fast ≡ reference when the rewritten word is a
// trace's side-exit/closing guard branch.
func TestDiffSMCAtGuard(t *testing.T) { diffRun(t, smcAtGuardProg) }

// TestDiffLoopHeavy runs the fusion-saturated benchmark workload itself
// through the differential harness.
func TestDiffLoopHeavy(t *testing.T) { diffRun(t, workgen.LoopHeavySource(4, 40)) }

// traceRun executes src on a fresh fast-path machine and returns it for
// trace-state introspection.
func traceRun(t *testing.T, src string) *Machine {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := NewMachine()
	m.Console = &bytes.Buffer{}
	m.SyscallFn = BareSyscalls()
	m.Devices = []Device{&UART{}}
	m.MaxInstrs = 10_000_000
	m.LoadExecutable(exe, DefaultStackTop)
	if _, err := RunFunctional(m); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// TestTraceSMCInvalidates proves the SMC programs actually exercise the
// trace layer: superblocks get built, the patching store drops at least
// one, and execution re-compiles afterwards.
func TestTraceSMCInvalidates(t *testing.T) {
	for name, src := range map[string]string{
		"inside": smcInsideTraceProg,
		"guard":  smcAtGuardProg,
	} {
		t.Run(name, func(t *testing.T) {
			m := traceRun(t, src)
			if m.tracesBuilt == 0 {
				t.Error("no traces built; loop never went hot")
			}
			if m.traceInvals == 0 {
				t.Error("no trace invalidated; the store missed the superblock span")
			}
			if m.traceHits == 0 {
				t.Error("no trace dispatched")
			}
		})
	}
}

// TestTraceFusionKinds compiles the loop-heavy kernel and checks the
// inner superblock is a closed loop made entirely of fused pairs — every
// macro-op pattern the compiler knows, with zero unfused singles.
func TestTraceFusionKinds(t *testing.T) {
	m := traceRun(t, workgen.LoopHeavySource(4, 40))
	if m.traceTab == nil {
		t.Fatal("no trace table")
	}
	seen := map[isa.Op]bool{}
	var inner *trace
	for _, tr := range m.traceTab {
		if tr != nil && tr.n == 12 && tr.next == tr.head {
			inner = tr
		}
	}
	if inner == nil {
		t.Fatal("inner-loop superblock (closed, n=12) not found")
	}
	if len(inner.ops) != 6 {
		t.Fatalf("inner loop has %d trace ops, want 6 fused pairs", len(inner.ops))
	}
	for _, op := range inner.ops {
		if op.n != 2 {
			t.Errorf("op %#x at pc %#x not fused (n=%d)", op.op, op.pc, op.n)
		}
		seen[op.op] = true
	}
	for _, k := range []isa.Op{topAddiLd, topLuiAddi, topAddAdd, topAddiSd, topAddiAddi, topCmpBranch} {
		if !seen[k] {
			t.Errorf("fusion kind %#x missing from inner superblock", k)
		}
	}
	if inner.hi-inner.lo != 4*inner.n {
		t.Errorf("span [%#x,%#x) does not cover the %d compiled words", inner.lo, inner.hi, inner.n)
	}
}

// TestTraceUncompilableSentinel checks a hot head whose first instruction
// ends a superblock (ecall) installs an n==0 sentinel — so the head stops
// paying the hotness counter — without counting as a built trace.
func TestTraceUncompilableSentinel(t *testing.T) {
	m := traceRun(t, `
_start:
    li s0, 64
    li a0, 46
    li a7, 0x102
loop:
    ecall
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
`)
	if m.traceTab == nil {
		t.Fatal("head never went hot")
	}
	var sentinel bool
	for _, tr := range m.traceTab {
		if tr != nil && tr.n == 0 {
			sentinel = true
		}
	}
	if !sentinel {
		t.Error("no uncompilable sentinel installed for the ecall head")
	}
	if m.tracesBuilt != 0 {
		t.Errorf("tracesBuilt = %d, want 0 (sentinels are not built traces)", m.tracesBuilt)
	}
}

// TestTraceInvalidateOverlap pins the [lo,hi) overlap logic of
// invalidateTraces against both boundary directions.
func TestTraceInvalidateOverlap(t *testing.T) {
	m := NewMachine()
	m.traceTab = new([traceTabSize]*trace)
	install := func(lo, hi uint64) int {
		tr := &trace{head: lo, lo: lo, hi: hi, n: 1}
		i := int((lo >> 2) & (traceTabSize - 1))
		m.traceTab[i] = tr
		return i
	}
	cases := []struct {
		name        string
		first, last uint64
		dropped     bool
	}{
		{"inside", 0x10010, 0x10014, true},
		{"overlap-low-edge", 0xfffc, 0x10004, true},
		{"overlap-high-edge", 0x1003c, 0x10044, true},
		{"just-below", 0xff00, 0x10000, false},
		{"just-above", 0x10040, 0x10080, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			i := install(0x10000, 0x10040)
			before := m.traceInvals
			m.invalidateTraces(c.first, c.last)
			if got := m.traceTab[i] == nil; got != c.dropped {
				t.Errorf("invalidateTraces(%#x,%#x): dropped=%v, want %v", c.first, c.last, got, c.dropped)
			}
			if c.dropped && m.traceInvals != before+1 {
				t.Errorf("traceInvals = %d, want %d", m.traceInvals, before+1)
			}
		})
	}
}

// TestTraceResetOnRebuild checks RebuildCode (the checkpoint-restore
// path) discards all trace-compiler state, so a restored run re-detects
// hotness from scratch.
func TestTraceResetOnRebuild(t *testing.T) {
	m := traceRun(t, workgen.LoopHeavySource(4, 40))
	if m.traceTab == nil || m.hotTab == nil {
		t.Fatal("run built no trace state")
	}
	m.RebuildCode()
	if m.traceTab != nil || m.hotTab != nil {
		t.Error("RebuildCode left trace-compiler state installed")
	}
}

// TestTraceCheckpointRestoreMidTrace is the trace-layer version of
// TestCheckpointRestoreResumes: the workload is fusion-dense so the
// snapshot boundary lands while superblock dispatch dominates, and the
// restored machine — whose trace tables start cold — must still replay
// the tail bit-identically.
func TestTraceCheckpointRestoreMidTrace(t *testing.T) {
	exe, err := asm.Assemble(workgen.LoopHeavySource(8, 64), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newMachine := func() (*Machine, *bytes.Buffer) {
		m := NewMachine()
		var console bytes.Buffer
		m.Console = &console
		m.SyscallFn = BareSyscalls()
		m.Devices = []Device{&UART{}}
		m.MaxInstrs = 10_000_000
		m.LoadExecutable(exe, DefaultStackTop)
		return m, &console
	}

	straight, straightConsole := newMachine()
	const every = 1000
	var snapArch ArchState
	snapPages := map[uint64][]byte{}
	var snapConsoleLen int
	straight.CkptEvery = every
	straight.CkptFn = func(m *Machine) error {
		if m.Instret != 3*every {
			return nil
		}
		snapArch = m.SaveArch()
		for _, pn := range m.Mem.PageNumbers() {
			snapPages[pn] = append([]byte(nil), m.Mem.PageBytes(pn)...)
		}
		snapConsoleLen = straightConsole.Len()
		return nil
	}
	if _, err := RunFunctional(straight); err != nil {
		t.Fatal(err)
	}
	if snapArch.Instret != 3*every {
		t.Fatal("mid-run snapshot never captured")
	}
	if straight.tracesBuilt == 0 || straight.traceHits == 0 {
		t.Fatal("straight run never dispatched a trace; test would be vacuous")
	}

	resumed, resumedConsole := newMachine()
	resumed.Mem.Reset()
	for pn, data := range snapPages {
		if err := resumed.Mem.SetPage(pn, data); err != nil {
			t.Fatal(err)
		}
	}
	resumed.RestoreArch(snapArch)
	if resumed.traceTab != nil || resumed.hotTab != nil {
		t.Fatal("restore left warm trace state; resumed run would not re-detect hotness")
	}
	if _, err := RunFunctional(resumed); err != nil {
		t.Fatal(err)
	}

	if resumed.Snap() != straight.Snap() {
		t.Errorf("final snapshot diverges:\nresumed  %+v\nstraight %+v", resumed.Snap(), straight.Snap())
	}
	if resumed.Now != straight.Now {
		t.Errorf("cycles = %d, want %d", resumed.Now, straight.Now)
	}
	wantSuffix := straightConsole.String()[snapConsoleLen:]
	if resumedConsole.String() != wantSuffix {
		t.Errorf("console suffix = %q, want %q", resumedConsole.String(), wantSuffix)
	}
	if resumed.tracesBuilt == 0 {
		t.Error("resumed run never rebuilt traces")
	}
}
