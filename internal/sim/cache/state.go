package cache

// Checkpoint serialization. Resumed cycle-exact runs need the cache
// model's exact tag/valid/LRU state (and the LRU clock) to charge the
// same hits and misses an uninterrupted run would; Hits/Misses travel
// too so end-of-run statistics match.

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

type state struct {
	Tags   [][]uint64
	Valid  [][]bool
	LRU    [][]uint64
	Clock  uint64
	Hits   uint64
	Misses uint64
}

// Save serializes the cache's complete replacement state for a
// deterministic simulation checkpoint.
func (c *Cache) Save() ([]byte, error) {
	st := state{
		Tags:   make([][]uint64, len(c.tags)),
		Valid:  make([][]bool, len(c.valid)),
		LRU:    make([][]uint64, len(c.lru)),
		Clock:  c.clock,
		Hits:   c.Hits,
		Misses: c.Misses,
	}
	for i := range c.tags {
		st.Tags[i] = append([]uint64(nil), c.tags[i]...)
		st.Valid[i] = append([]bool(nil), c.valid[i]...)
		st.LRU[i] = append([]uint64(nil), c.lru[i]...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces the cache's state with a prior Save. The cache must
// be configured identically to the one that saved.
func (c *Cache) Restore(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("cache: restore: %w", err)
	}
	if len(st.Tags) != c.sets || len(st.Valid) != c.sets || len(st.LRU) != c.sets {
		return fmt.Errorf("cache: restore: %d sets, want %d", len(st.Tags), c.sets)
	}
	for i := range st.Tags {
		if len(st.Tags[i]) != c.cfg.Ways || len(st.Valid[i]) != c.cfg.Ways || len(st.LRU[i]) != c.cfg.Ways {
			return fmt.Errorf("cache: restore: set %d has %d ways, want %d", i, len(st.Tags[i]), c.cfg.Ways)
		}
		copy(c.tags[i], st.Tags[i])
		copy(c.valid[i], st.Valid[i])
		copy(c.lru[i], st.LRU[i])
	}
	c.clock = st.Clock
	c.Hits = st.Hits
	c.Misses = st.Misses
	return nil
}
