package cache

import "testing"

// TestSaveRestoreRoundTrip warms a cache, snapshots, and checks a
// restored fresh cache produces the identical hit/miss sequence for the
// rest of a deterministic access stream.
func TestSaveRestoreRoundTrip(t *testing.T) {
	mk := func() *Cache {
		c, err := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	addr := func(x uint64) uint64 { return (x * 0x9e3779b97f4a7c15) % (64 << 10) }

	orig := mk()
	for i := uint64(0); i < 4096; i++ {
		orig.Access(addr(i))
	}
	saved, err := orig.Save()
	if err != nil {
		t.Fatal(err)
	}

	restored := mk()
	if err := restored.Restore(saved); err != nil {
		t.Fatal(err)
	}
	if restored.Hits != orig.Hits || restored.Misses != orig.Misses {
		t.Fatalf("restored stats %d/%d, want %d/%d", restored.Hits, restored.Misses, orig.Hits, orig.Misses)
	}
	for i := uint64(4096); i < 8192; i++ {
		a := addr(i)
		if got, want := restored.Access(a), orig.Access(a); got != want {
			t.Fatalf("access %d (%#x): restored hit=%v, original hit=%v", i, a, got, want)
		}
	}
	if restored.Hits != orig.Hits || restored.Misses != orig.Misses {
		t.Errorf("final stats diverge: %d/%d vs %d/%d", restored.Hits, restored.Misses, orig.Hits, orig.Misses)
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	small, err := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(DefaultL1D())
	if err != nil {
		t.Fatal(err)
	}
	st, err := small.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Restore(st); err == nil {
		t.Error("restore across geometries did not fail")
	}
}
