package cache

import (
	"math/rand"
	"testing"
)

func mk(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdMissThenHit(t *testing.T) {
	c := mk(t, DefaultL1D())
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same 64B line should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2 sets, 16B lines: addresses with same set bits conflict.
	c := mk(t, Config{SizeBytes: 64, LineBytes: 16, Ways: 2})
	if c.Sets() != 2 {
		t.Fatalf("sets = %d", c.Sets())
	}
	// Three lines mapping to set 0 (stride = lineBytes * sets = 32).
	a, b, d := uint64(0x000), uint64(0x040), uint64(0x080)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill
	c.Access(a) // hit, a more recent than b
	c.Access(d) // miss, evicts b (LRU)
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestFullAssociativityWithinSet(t *testing.T) {
	c := mk(t, Config{SizeBytes: 256, LineBytes: 16, Ways: 4})
	// 4 conflicting lines fit in a 4-way set.
	stride := uint64(16 * c.Sets())
	for i := uint64(0); i < 4; i++ {
		c.Access(i * stride)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Access(i * stride) {
			t.Errorf("way %d evicted prematurely", i)
		}
	}
	// A 5th conflicting line evicts exactly the LRU line (line 0).
	c.Access(4 * stride)
	for i := uint64(1); i < 4; i++ {
		if !c.Access(i * stride) {
			t.Errorf("line %d should still be resident", i)
		}
	}
	if c.Access(0) {
		t.Error("LRU line 0 should have been evicted")
	}
}

func TestSequentialStreamHitRate(t *testing.T) {
	c := mk(t, DefaultL1D())
	for addr := uint64(0); addr < 1<<16; addr += 8 {
		c.Access(addr)
	}
	// 8-byte strides over 64-byte lines: 1 miss per 8 accesses.
	if got := c.HitRate(); got < 0.87 || got > 0.88 {
		t.Errorf("sequential hit rate = %.4f, want 0.875", got)
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := mk(t, DefaultL1D())
	warm := func() {
		for addr := uint64(0); addr < 8<<10; addr += 64 {
			c.Access(addr)
		}
	}
	warm() // cold misses
	c.Hits, c.Misses = 0, 0
	warm()
	if c.HitRate() != 1.0 {
		t.Errorf("8KiB working set in 16KiB cache: hit rate %.4f", c.HitRate())
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	c := mk(t, DefaultL1D())
	for round := 0; round < 4; round++ {
		for addr := uint64(0); addr < 64<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.HitRate() > 0.1 {
		t.Errorf("64KiB streaming set in 16KiB cache should thrash, hit rate %.4f", c.HitRate())
	}
}

func TestReset(t *testing.T) {
	c := mk(t, DefaultL1I())
	c.Access(0x1000)
	c.Access(0x1000)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("stats not cleared")
	}
	if c.Access(0x1000) {
		t.Error("reset cache should miss")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},  // non-power-of-2 line
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},  // zero ways
		{SizeBytes: 96, LineBytes: 64, Ways: 2},    // not divisible
		{SizeBytes: 3072, LineBytes: 64, Ways: 16}, // sets not power of 2
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): expected error", cfg)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		c := mk(t, DefaultL1D())
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 100000; i++ {
			c.Access(uint64(rng.Intn(1 << 18)))
		}
		return c.Hits, c.Misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Error("cache behaviour not deterministic")
	}
}

func TestHitRateNoAccesses(t *testing.T) {
	c := mk(t, DefaultL1I())
	if c.HitRate() != 1 {
		t.Error("empty cache hit rate should be 1")
	}
}
