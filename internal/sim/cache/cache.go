// Package cache implements the set-associative cache timing models used by
// the cycle-exact simulator for the L1 instruction and data caches. Only
// timing is modelled (hit/miss); data always comes from the functional
// memory, which keeps the functional/cycle-exact equivalence trivially true.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
}

// DefaultL1I returns a typical 16KiB 4-way L1 instruction cache.
func DefaultL1I() Config { return Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4} }

// DefaultL1D returns a typical 16KiB 4-way L1 data cache.
func DefaultL1D() Config { return Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4} }

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// tags[set][way]; lru[set][way] holds recency (higher = more recent).
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64

	Hits   uint64
	Misses uint64
}

// New validates the configuration and builds the cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d bytes / %d-byte lines not divisible into %d ways",
			cfg.SizeBytes, cfg.LineBytes, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &Cache{cfg: cfg, sets: sets}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineBits++
	}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// Access looks up addr, updating LRU state and filling on miss.
// It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & uint64(c.sets-1))
	tag := line >> uint(log2(c.sets))
	c.clock++
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			c.Hits++
			return true
		}
	}
	// Miss: fill LRU way.
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
	c.Misses++
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		for w := range c.valid[i] {
			c.valid[i][w] = false
			c.lru[i][w] = 0
		}
	}
	c.clock, c.Hits, c.Misses = 0, 0, 0
}

// HitRate returns hits/(hits+misses), or 1 when no accesses occurred.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 1
	}
	return float64(c.Hits) / float64(total)
}

// Sets returns the number of sets (for tests and introspection).
func (c *Cache) Sets() int { return c.sets }

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
