package sim

import (
	"bytes"
	"fmt"
	"sort"
)

// pageBits selects a 4KiB page granularity for the sparse memory.
const pageBits = 12
const pageSize = 1 << pageBits

// tlbBits sizes the software TLB: a small direct-mapped cache of page
// pointers that lets the common load/store skip the page-map lookup.
const tlbBits = 6
const tlbSize = 1 << tlbBits

// PageSize is the page granularity, exported so checkpointing can store
// and restore whole pages as content-addressed blobs.
const PageSize = pageSize

// tlbEntry caches one page-number -> page-pointer translation. The tag is
// pn+1 so the zero value is never a valid entry. dirty caches membership
// of the page in the dirty set, so the store fast path marks a page dirty
// at most once per entry residency.
type tlbEntry struct {
	tag   uint64
	page  *[pageSize]byte
	dirty bool
}

// Memory is a sparse, paged guest physical memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// tlb is the soft TLB. Pages are only ever added to the page map
	// (never freed while the Memory is live, Reset aside), so cached
	// pointers stay valid for the lifetime of the Memory.
	tlb [tlbSize]tlbEntry

	// dirty accumulates the numbers of pages written since the last
	// TakeDirty, so checkpointing re-hashes only pages that changed.
	dirty map[uint64]struct{}
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}, dirty: map[uint64]struct{}{}}
}

// lookup translates addr to its page, consulting the soft TLB before the
// page map. It returns nil for unmapped pages (which read as zero). The
// TLB-hit path is small enough to inline into simulator hot loops.
func (m *Memory) lookup(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	e := &m.tlb[pn&(tlbSize-1)]
	if e.tag == pn+1 {
		return e.page
	}
	return m.lookupMiss(pn)
}

// lookupMiss refills the TLB from the page map.
func (m *Memory) lookupMiss(pn uint64) *[pageSize]byte {
	p := m.pages[pn]
	if p != nil {
		e := &m.tlb[pn&(tlbSize-1)]
		e.tag, e.page, e.dirty = pn+1, p, false
	}
	return p
}

// lookupCreate is lookup for the write path: unmapped pages are allocated
// and the page is marked dirty. The hot case — a TLB hit on a page
// already marked this epoch — stays small enough to inline.
func (m *Memory) lookupCreate(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	e := &m.tlb[pn&(tlbSize-1)]
	if e.tag == pn+1 && e.dirty {
		return e.page
	}
	return m.lookupCreateSlow(pn)
}

// lookupCreateSlow handles the first store to a TLB-resident clean page
// (marking it dirty) and falls through to the full miss path.
func (m *Memory) lookupCreateSlow(pn uint64) *[pageSize]byte {
	if e := &m.tlb[pn&(tlbSize-1)]; e.tag == pn+1 {
		e.dirty = true
		m.dirty[pn] = struct{}{}
		return e.page
	}
	return m.lookupCreateMiss(pn)
}

// lookupCreateMiss refills the TLB, allocating the page if needed.
func (m *Memory) lookupCreateMiss(pn uint64) *[pageSize]byte {
	p, ok := m.pages[pn]
	if !ok {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	e := &m.tlb[pn&(tlbSize-1)]
	e.tag, e.page, e.dirty = pn+1, p, true
	m.dirty[pn] = struct{}{}
	return p
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	if create {
		return m.lookupCreate(addr)
	}
	return m.lookup(addr)
}

// ReadBytes copies n bytes starting at addr into a new slice. Unmapped
// memory reads as zero.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores b at addr, allocating pages as needed.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(p[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// Read returns a little-endian value of the given byte size.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.lookup(addr)
		if p == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+i])
		}
		return v
	}
	b := m.ReadBytes(addr, size)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write stores a little-endian value of the given byte size.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.lookupCreate(addr)
		for i := 0; i < size; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	var b [8]byte
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteBytes(addr, b[:size])
}

// ReadString reads a NUL-terminated string of at most max bytes. It scans
// page-sized chunks rather than issuing one read per byte; an unmapped page
// reads as zero and therefore terminates the string.
func (m *Memory) ReadString(addr uint64, max int) (string, error) {
	var out []byte
	for n := 0; n < max; {
		a := addr + uint64(n)
		off := int(a & (pageSize - 1))
		chunk := pageSize - off
		if chunk > max-n {
			chunk = max - n
		}
		p := m.lookup(a)
		if p == nil {
			// Unmapped memory reads as zero: the terminator is here.
			return string(out), nil
		}
		window := p[off : off+chunk]
		if i := bytes.IndexByte(window, 0); i >= 0 {
			return string(append(out, window[:i]...)), nil
		}
		out = append(out, window...)
		n += chunk
	}
	return "", fmt.Errorf("sim: unterminated string at %#x", addr)
}

// MappedPages reports how many pages are allocated, for memory accounting.
func (m *Memory) MappedPages() int { return len(m.pages) }

// PageNumbers returns every mapped page number in ascending order, so
// iteration (and therefore checkpoint content) is deterministic.
func (m *Memory) PageNumbers() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageBytes returns a view of page pn's backing bytes (nil if unmapped).
// Callers must not write through it; use SetPage or WriteBytes.
func (m *Memory) PageBytes(pn uint64) []byte {
	p := m.pages[pn]
	if p == nil {
		return nil
	}
	return p[:]
}

// SetPage installs data (exactly PageSize bytes) as the contents of page
// pn, allocating it if needed — the checkpoint-restore path.
func (m *Memory) SetPage(pn uint64, data []byte) error {
	if len(data) != pageSize {
		return fmt.Errorf("sim: SetPage(%#x): %d bytes, want %d", pn, len(data), pageSize)
	}
	p, ok := m.pages[pn]
	if !ok {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	copy(p[:], data)
	return nil
}

// TakeDirty returns the set of pages written since the last call and
// resets tracking (including the TLB's cached dirty bits).
func (m *Memory) TakeDirty() map[uint64]struct{} {
	d := m.dirty
	m.dirty = map[uint64]struct{}{}
	for i := range m.tlb {
		m.tlb[i].dirty = false
	}
	return d
}

// Reset drops every page, the TLB, and dirty tracking — the prelude to
// installing a checkpoint's pages wholesale.
func (m *Memory) Reset() {
	m.pages = map[uint64]*[pageSize]byte{}
	m.tlb = [tlbSize]tlbEntry{}
	m.dirty = map[uint64]struct{}{}
}

// Clone returns a deep copy of memory (used to snapshot machine state).
// The clone starts with a cold TLB.
func (m *Memory) Clone() *Memory {
	n := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		n.pages[pn] = cp
	}
	return n
}
