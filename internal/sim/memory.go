package sim

import "fmt"

// pageBits selects a 4KiB page granularity for the sparse memory.
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged guest physical memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	p, ok := m.pages[pn]
	if !ok && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies n bytes starting at addr into a new slice. Unmapped
// memory reads as zero.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores b at addr, allocating pages as needed.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(p[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// Read returns a little-endian value of the given byte size.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+i])
		}
		return v
	}
	b := m.ReadBytes(addr, size)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write stores a little-endian value of the given byte size.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.page(addr, true)
		for i := 0; i < size; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	var b [8]byte
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteBytes(addr, b[:size])
}

// ReadString reads a NUL-terminated string of at most max bytes.
func (m *Memory) ReadString(addr uint64, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b := byte(m.Read(addr+uint64(i), 1))
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("sim: unterminated string at %#x", addr)
}

// MappedPages reports how many pages are allocated, for memory accounting.
func (m *Memory) MappedPages() int { return len(m.pages) }

// Clone returns a deep copy of memory (used to snapshot machine state).
func (m *Memory) Clone() *Memory {
	n := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		n.pages[pn] = cp
	}
	return n
}
