package sim

import (
	"bytes"
	"fmt"
)

// pageBits selects a 4KiB page granularity for the sparse memory.
const pageBits = 12
const pageSize = 1 << pageBits

// tlbBits sizes the software TLB: a small direct-mapped cache of page
// pointers that lets the common load/store skip the page-map lookup.
const tlbBits = 6
const tlbSize = 1 << tlbBits

// tlbEntry caches one page-number -> page-pointer translation. The tag is
// pn+1 so the zero value is never a valid entry.
type tlbEntry struct {
	tag  uint64
	page *[pageSize]byte
}

// Memory is a sparse, paged guest physical memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// tlb is the soft TLB. Pages are only ever added to the page map
	// (never freed while the Memory is live), so cached pointers stay
	// valid for the lifetime of the Memory.
	tlb [tlbSize]tlbEntry
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}}
}

// lookup translates addr to its page, consulting the soft TLB before the
// page map. It returns nil for unmapped pages (which read as zero). The
// TLB-hit path is small enough to inline into simulator hot loops.
func (m *Memory) lookup(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	e := &m.tlb[pn&(tlbSize-1)]
	if e.tag == pn+1 {
		return e.page
	}
	return m.lookupMiss(pn)
}

// lookupMiss refills the TLB from the page map.
func (m *Memory) lookupMiss(pn uint64) *[pageSize]byte {
	p := m.pages[pn]
	if p != nil {
		e := &m.tlb[pn&(tlbSize-1)]
		e.tag, e.page = pn+1, p
	}
	return p
}

// lookupCreate is lookup for the write path: unmapped pages are allocated.
func (m *Memory) lookupCreate(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	e := &m.tlb[pn&(tlbSize-1)]
	if e.tag == pn+1 {
		return e.page
	}
	return m.lookupCreateMiss(pn)
}

// lookupCreateMiss refills the TLB, allocating the page if needed.
func (m *Memory) lookupCreateMiss(pn uint64) *[pageSize]byte {
	p, ok := m.pages[pn]
	if !ok {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	e := &m.tlb[pn&(tlbSize-1)]
	e.tag, e.page = pn+1, p
	return p
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	if create {
		return m.lookupCreate(addr)
	}
	return m.lookup(addr)
}

// ReadBytes copies n bytes starting at addr into a new slice. Unmapped
// memory reads as zero.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores b at addr, allocating pages as needed.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(p[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// Read returns a little-endian value of the given byte size.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.lookup(addr)
		if p == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+i])
		}
		return v
	}
	b := m.ReadBytes(addr, size)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write stores a little-endian value of the given byte size.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		// Fast path: the access stays within one page.
		p := m.lookupCreate(addr)
		for i := 0; i < size; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	var b [8]byte
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteBytes(addr, b[:size])
}

// ReadString reads a NUL-terminated string of at most max bytes. It scans
// page-sized chunks rather than issuing one read per byte; an unmapped page
// reads as zero and therefore terminates the string.
func (m *Memory) ReadString(addr uint64, max int) (string, error) {
	var out []byte
	for n := 0; n < max; {
		a := addr + uint64(n)
		off := int(a & (pageSize - 1))
		chunk := pageSize - off
		if chunk > max-n {
			chunk = max - n
		}
		p := m.lookup(a)
		if p == nil {
			// Unmapped memory reads as zero: the terminator is here.
			return string(out), nil
		}
		window := p[off : off+chunk]
		if i := bytes.IndexByte(window, 0); i >= 0 {
			return string(append(out, window[:i]...)), nil
		}
		out = append(out, window...)
		n += chunk
	}
	return "", fmt.Errorf("sim: unterminated string at %#x", addr)
}

// MappedPages reports how many pages are allocated, for memory accounting.
func (m *Memory) MappedPages() int { return len(m.pages) }

// Clone returns a deep copy of memory (used to snapshot machine state).
// The clone starts with a cold TLB.
func (m *Memory) Clone() *Memory {
	n := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		n.pages[pn] = cp
	}
	return n
}
