package sim

import (
	"io"

	"firemarshal/internal/isa"
)

// ExecResult summarizes one guest program execution.
type ExecResult struct {
	Exit   int64
	Instrs uint64
	// Cycles is the cycle cost of the execution (equal to Instrs on
	// functional platforms).
	Cycles uint64
}

// SyscallFallback extends the bare syscall environment with
// platform-specific calls (golden models, accelerators). It reports whether
// it handled the syscall number.
type SyscallFallback func(m *Machine, num uint64) (bool, error)

// Platform is the simulation substrate a guest OS or bare-metal harness
// runs on: either the functional simulator (QEMU/Spike role) or the
// cycle-exact simulator (FireSim role). The guest OS charges modeled
// overhead through Charge and executes user binaries through Exec; because
// both platforms implement the same interface over the same Machine
// semantics, the exact same artifacts run on both — the paper's central
// guarantee.
type Platform interface {
	// Name identifies the platform ("qemu", "spike", "firesim", ...).
	Name() string
	// CycleExact reports whether cycle counts are meaningful timing.
	CycleExact() bool
	// Cycles returns the node's current cycle.
	Cycles() uint64
	// Charge advances the node clock by modeled overhead cycles.
	Charge(n uint64)
	// AddDevice attaches an MMIO device (driver loading / golden models).
	AddDevice(d Device)
	// AddHook attaches a data-access hook (remote-memory models).
	AddHook(h MemHook)
	// AddSyscall attaches a platform syscall extension.
	AddSyscall(fb SyscallFallback)
	// Exec runs a guest executable to completion. args are passed to the
	// guest via the RISC-V argc/argv convention (a0/a1).
	Exec(exe *isa.Executable, console io.Writer, args ...string) (*ExecResult, error)
}
