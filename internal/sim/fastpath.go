// Fast execution paths through the machine.
//
// runFast is the functional simulator's hot loop: a dense switch over
// predecoded, pre-split instructions with architectural state held in
// locals, the soft-TLB memory fast path inlined for RAM loads/stores, and
// a one-comparison device-range pre-check. Anything the inline cases do
// not cover — syscalls, CSR reads, MMIO, traps, segment switches — is
// executed by the reference StepInto, one instruction at a time, so the
// tricky semantics exist in exactly one place. The differential tests in
// diff_test.go lock runFast ≡ RunReference on snapshots, console bytes,
// and retired-instruction counts.
//
// RunBatch is the cycle-exact simulator's loop: it retires instructions
// through StepInto (which shares the predecoded fetch path and soft TLB),
// emitting every Event and charging the timing model after each one, with
// the per-batch bookkeeping amortized across len(evs) instructions.
package sim

import (
	"encoding/binary"

	"firemarshal/internal/isa"
)

// stopPollChunk is how many instructions the fast loop retires between
// polls of the Stop channel — about 3ms of guest time at ~300 sim-MIPS,
// so cancellation latency stays imperceptible while the poll cost
// vanishes into the chunk.
const stopPollChunk = 1 << 20

// RunBatch executes up to len(evs) instructions, writing one Event per
// retired instruction. After each instruction the timing model is charged:
// m.Now += charge(ev). A nil charge advances Now by one per instruction
// (functional time). It returns the number of instructions retired;
// execution stops early when the machine halts or on error. Because events
// are produced and charged in exactly the order the unbatched loop would,
// cycle counts are bit-identical to per-step simulation.
func (m *Machine) RunBatch(evs []Event, charge func(*Event) uint64) (int, error) {
	// Metrics land once per batch: the deferred flush publishes this
	// batch's retired/cycle delta to the attached shards (nil = two
	// compares), keeping the per-instruction loop untouched.
	defer m.flushObs()
	// Checkpoint integration: fire a boundary left pending by the caller,
	// then clamp the batch so it ends exactly on the next boundary. The
	// cycle-exact loop therefore snapshots at the same retired-instruction
	// counts the functional paths do.
	if err := m.maybeCheckpoint(); err != nil {
		return 0, err
	}
	if d := m.ckptDist(); d < uint64(len(evs)) {
		evs = evs[:d]
	}
	n := 0
	for n < len(evs) && !m.Halted {
		ev := &evs[n]
		if err := m.StepInto(ev); err != nil {
			return n, err
		}
		n++
		if charge != nil {
			m.Now += charge(ev)
		} else {
			m.Now++
		}
	}
	if err := m.maybeCheckpoint(); err != nil {
		return n, err
	}
	return n, nil
}

// runFast executes until the machine halts, advancing functional time (one
// cycle per instruction). Callers must ensure no hooks, trace writer, or
// tamper function are installed; devices are fine (MMIO takes the slow
// path).
func (m *Machine) runFast() error {
	if m.Halted {
		return nil
	}
	// Final metrics flush on every exit path; the chunk boundary below
	// flushes mid-run so a live scrape sees progress. Both are deltas, so
	// together they count each instruction exactly once.
	defer m.flushObs()
	if len(m.Devices) != m.devN {
		m.indexDevices()
	}
	mem := m.Mem
	regs := &m.Regs
	pc := m.PC
	limit := ^uint64(0)
	if m.MaxInstrs > 0 {
		limit = m.MaxInstrs
	}
	devLo, devSpan := m.devLo, m.devHi-m.devLo
	predLo, predSpan := m.predLo, m.predHi-m.predLo
	traceOff := m.TraceOff

	// Declared out of the loop so goto slowpath never jumps over a
	// declaration in scope at the label. The current segment's fields are
	// hoisted into locals (re-hoisted after every slow step) so the fetch
	// is an offset check and a slice index with no pointer chasing.
	//
	// Instead of bumping Instret and Now per instruction, the loop counts
	// a single budget down from the instruction limit; the retired count
	// is reconstructed whenever state is published at slowpath. Functional
	// time advances one cycle per instruction, so Now moves in lockstep.
	var (
		in       uop
		next     uint64
		ev       Event
		segBase  uint64
		segUops  []uop
		budget0  uint64
		budget   uint64
		consumed uint64
	)
	if s := m.curSeg; s != nil {
		segBase, segUops = s.base, s.uops
	}
	if err := m.maybeCheckpoint(); err != nil {
		return err
	}
	budget0 = 0
	if limit > m.Instret {
		budget0 = limit - m.Instret
	}
	if m.Stop != nil && budget0 > stopPollChunk {
		// A kill switch is installed: count the budget down in chunks so
		// the channel is polled every stopPollChunk instructions. Without
		// one (the common case) the budget spans the whole run and the
		// loop is unchanged.
		budget0 = stopPollChunk
	}
	// Checkpointing rides the same chunk mechanism: clamping the budget to
	// the boundary distance makes the loop surface at exact multiples of
	// CkptEvery, where maybeCheckpoint fires with state published.
	if d := m.ckptDist(); budget0 > d {
		budget0 = d
	}
	budget = budget0

	for {
		if budget == 0 {
			// The chunk is spent. Publish its retired instructions, fire a
			// checkpoint if this is a boundary, then either poll Stop and
			// refill (chunk boundary) or take the slow path so StepInto
			// raises the instruction-limit trap.
			m.PC = pc
			m.Instret += budget0
			m.Now += budget0
			m.flushObs()
			if err := m.maybeCheckpoint(); err != nil {
				return err
			}
			budget0 = 0
			if limit > m.Instret {
				budget0 = limit - m.Instret
			}
			if budget0 == 0 {
				goto slowpath // consumed is now zero; StepInto raises the limit trap
			}
			if m.Interrupted() {
				return ErrStopped
			}
			if m.Stop != nil && budget0 > stopPollChunk {
				budget0 = stopPollChunk
			}
			if d := m.ckptDist(); budget0 > d {
				budget0 = d
			}
			budget = budget0
			continue
		}
		{
			idx := pc - segBase
			if idx&3 != 0 || idx>>2 >= uint64(len(segUops)) {
				goto slowpath // segment switch or misaligned PC
			}
			in = segUops[idx>>2]
		}
		next = pc + 4

		switch in.Op {
		case isa.OpADD:
			rd := regs[in.Rs1&31] + regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSUB:
			rd := regs[in.Rs1&31] - regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLL:
			rd := regs[in.Rs1&31] << (regs[in.Rs2&31] & 63)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLT:
			var rd uint64
			if int64(regs[in.Rs1&31]) < int64(regs[in.Rs2&31]) {
				rd = 1
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLTU:
			var rd uint64
			if regs[in.Rs1&31] < regs[in.Rs2&31] {
				rd = 1
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpXOR:
			rd := regs[in.Rs1&31] ^ regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRL:
			rd := regs[in.Rs1&31] >> (regs[in.Rs2&31] & 63)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRA:
			rd := uint64(int64(regs[in.Rs1&31]) >> (regs[in.Rs2&31] & 63))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpOR:
			rd := regs[in.Rs1&31] | regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpAND:
			rd := regs[in.Rs1&31] & regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpMUL:
			rd := regs[in.Rs1&31] * regs[in.Rs2&31]
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpMULH:
			rd := mulh(int64(regs[in.Rs1&31]), int64(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpMULHU:
			rd := mulhu(regs[in.Rs1&31], regs[in.Rs2&31])
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpDIV:
			rd := div(int64(regs[in.Rs1&31]), int64(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpDIVU:
			rs2 := regs[in.Rs2&31]
			rd := ^uint64(0)
			if rs2 != 0 {
				rd = regs[in.Rs1&31] / rs2
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpREM:
			rd := rem(int64(regs[in.Rs1&31]), int64(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpREMU:
			rs1, rs2 := regs[in.Rs1&31], regs[in.Rs2&31]
			rd := rs1
			if rs2 != 0 {
				rd = rs1 % rs2
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpADDI:
			rd := regs[in.Rs1&31] + uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLTI:
			var rd uint64
			if int64(regs[in.Rs1&31]) < int64(in.Imm) {
				rd = 1
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLTIU:
			var rd uint64
			if regs[in.Rs1&31] < uint64(in.Imm) {
				rd = 1
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpXORI:
			rd := regs[in.Rs1&31] ^ uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpORI:
			rd := regs[in.Rs1&31] | uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpANDI:
			rd := regs[in.Rs1&31] & uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLLI:
			rd := regs[in.Rs1&31] << uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRLI:
			rd := regs[in.Rs1&31] >> uint64(in.Imm)
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRAI:
			rd := uint64(int64(regs[in.Rs1&31]) >> uint64(in.Imm))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpLUI:
			regs[in.Rd&31] = uint64(in.Imm)
			regs[0] = 0
		case isa.OpAUIPC:
			regs[in.Rd&31] = pc + uint64(in.Imm)
			regs[0] = 0
		case isa.OpJAL:
			regs[in.Rd&31] = next
			regs[0] = 0
			next = pc + uint64(in.Imm)
		case isa.OpJALR:
			t := next
			next = (regs[in.Rs1&31] + uint64(in.Imm)) &^ 1
			regs[in.Rd&31] = t
			regs[0] = 0
		case isa.OpBEQ:
			if regs[in.Rs1&31] == regs[in.Rs2&31] {
				next = pc + uint64(in.Imm)
			}
		case isa.OpBNE:
			if regs[in.Rs1&31] != regs[in.Rs2&31] {
				next = pc + uint64(in.Imm)
			}
		case isa.OpBLT:
			if int64(regs[in.Rs1&31]) < int64(regs[in.Rs2&31]) {
				next = pc + uint64(in.Imm)
			}
		case isa.OpBGE:
			if int64(regs[in.Rs1&31]) >= int64(regs[in.Rs2&31]) {
				next = pc + uint64(in.Imm)
			}
		case isa.OpBLTU:
			if regs[in.Rs1&31] < regs[in.Rs2&31] {
				next = pc + uint64(in.Imm)
			}
		case isa.OpBGEU:
			if regs[in.Rs1&31] >= regs[in.Rs2&31] {
				next = pc + uint64(in.Imm)
			}

		case isa.OpLD:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var rd uint64
			if off := addr & (pageSize - 1); off <= pageSize-8 {
				if p := mem.lookup(addr); p != nil {
					rd = binary.LittleEndian.Uint64(p[off:])
				}
			} else {
				rd = mem.Read(addr, 8)
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpLW:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v uint32
			if off := addr & (pageSize - 1); off <= pageSize-4 {
				if p := mem.lookup(addr); p != nil {
					v = binary.LittleEndian.Uint32(p[off:])
				}
			} else {
				v = uint32(mem.Read(addr, 4))
			}
			regs[in.Rd&31] = uint64(int64(int32(v)))
			regs[0] = 0
		case isa.OpLWU:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v uint32
			if off := addr & (pageSize - 1); off <= pageSize-4 {
				if p := mem.lookup(addr); p != nil {
					v = binary.LittleEndian.Uint32(p[off:])
				}
			} else {
				v = uint32(mem.Read(addr, 4))
			}
			regs[in.Rd&31] = uint64(v)
			regs[0] = 0
		case isa.OpLH:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v uint16
			if off := addr & (pageSize - 1); off <= pageSize-2 {
				if p := mem.lookup(addr); p != nil {
					v = binary.LittleEndian.Uint16(p[off:])
				}
			} else {
				v = uint16(mem.Read(addr, 2))
			}
			regs[in.Rd&31] = uint64(int64(int16(v)))
			regs[0] = 0
		case isa.OpLHU:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v uint16
			if off := addr & (pageSize - 1); off <= pageSize-2 {
				if p := mem.lookup(addr); p != nil {
					v = binary.LittleEndian.Uint16(p[off:])
				}
			} else {
				v = uint16(mem.Read(addr, 2))
			}
			regs[in.Rd&31] = uint64(v)
			regs[0] = 0
		case isa.OpLB:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v byte
			if p := mem.lookup(addr); p != nil {
				v = p[addr&(pageSize-1)]
			}
			regs[in.Rd&31] = uint64(int64(int8(v)))
			regs[0] = 0
		case isa.OpLBU:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			var v byte
			if p := mem.lookup(addr); p != nil {
				v = p[addr&(pageSize-1)]
			}
			regs[in.Rd&31] = uint64(v)
			regs[0] = 0

		case isa.OpSD:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			if off := addr & (pageSize - 1); off <= pageSize-8 {
				binary.LittleEndian.PutUint64(mem.lookupCreate(addr)[off:], regs[in.Rs2&31])
			} else {
				mem.Write(addr, 8, regs[in.Rs2&31])
			}
			if addr-predLo < predSpan {
				m.invalidateCode(addr, 8)
			}
		case isa.OpSW:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			if off := addr & (pageSize - 1); off <= pageSize-4 {
				binary.LittleEndian.PutUint32(mem.lookupCreate(addr)[off:], uint32(regs[in.Rs2&31]))
			} else {
				mem.Write(addr, 4, regs[in.Rs2&31])
			}
			if addr-predLo < predSpan {
				m.invalidateCode(addr, 4)
			}
		case isa.OpSH:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			if off := addr & (pageSize - 1); off <= pageSize-2 {
				binary.LittleEndian.PutUint16(mem.lookupCreate(addr)[off:], uint16(regs[in.Rs2&31]))
			} else {
				mem.Write(addr, 2, regs[in.Rs2&31])
			}
			if addr-predLo < predSpan {
				m.invalidateCode(addr, 2)
			}
		case isa.OpSB:
			addr := regs[in.Rs1&31] + uint64(in.Imm)
			if addr-devLo < devSpan {
				goto slowpath
			}
			mem.lookupCreate(addr)[addr&(pageSize-1)] = byte(regs[in.Rs2&31])
			if addr-predLo < predSpan {
				m.invalidateCode(addr, 1)
			}

		case isa.OpADDW:
			rd := sext32(uint32(regs[in.Rs1&31]) + uint32(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSUBW:
			rd := sext32(uint32(regs[in.Rs1&31]) - uint32(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLLW:
			rd := sext32(uint32(regs[in.Rs1&31]) << (regs[in.Rs2&31] & 31))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRLW:
			rd := sext32(uint32(regs[in.Rs1&31]) >> (regs[in.Rs2&31] & 31))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRAW:
			rd := uint64(int64(int32(regs[in.Rs1&31]) >> (regs[in.Rs2&31] & 31)))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpADDIW:
			rd := sext32(uint32(regs[in.Rs1&31]) + uint32(in.Imm))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSLLIW:
			rd := sext32(uint32(regs[in.Rs1&31]) << uint64(in.Imm))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRLIW:
			rd := sext32(uint32(regs[in.Rs1&31]) >> uint64(in.Imm))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpSRAIW:
			rd := uint64(int64(int32(regs[in.Rs1&31]) >> uint64(in.Imm)))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpMULW:
			rd := sext32(uint32(regs[in.Rs1&31]) * uint32(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpDIVW:
			rd := divw(int32(regs[in.Rs1&31]), int32(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpDIVUW:
			rs2 := uint32(regs[in.Rs2&31])
			rd := ^uint64(0)
			if rs2 != 0 {
				rd = sext32(uint32(regs[in.Rs1&31]) / rs2)
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpREMW:
			rd := remw(int32(regs[in.Rs1&31]), int32(regs[in.Rs2&31]))
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpREMUW:
			rs1, rs2 := uint32(regs[in.Rs1&31]), uint32(regs[in.Rs2&31])
			rd := sext32(rs1)
			if rs2 != 0 {
				rd = sext32(rs1 % rs2)
			}
			regs[in.Rd&31] = rd
			regs[0] = 0
		case isa.OpFENCE:
			// No-op.
		default:
			// ECALL, EBREAK, CSR reads, invalid words, and anything else
			// with environment interactions runs on the reference path.
			goto slowpath
		}

		if next <= pc && !traceOff {
			// A backward (or self) edge was just taken: the landing pc is a
			// loop-head candidate. Dispatch a compiled superblock when one
			// exists and a full pass fits in the remaining budget (the
			// budget is already clamped to the instruction limit, the Stop
			// poll chunk, and the checkpoint boundary, so a trace can never
			// overrun any of them); otherwise bump the head's hotness,
			// compiling it at the threshold. See trace.go. With TraceOff
			// set the whole block is skipped and the loop stays a pure
			// predecoded interpreter (the farm's "fast" tier).
			pc = next
			budget--
			if t := m.lookupTrace(pc); t != nil {
				if t.n != 0 && budget >= t.n {
					m.traceHits++
					m.fusionSeen |= t.fusion
					var nret uint64
					pc, nret = m.runTrace(t, regs, mem, devLo, devSpan, predLo, predSpan, budget)
					budget -= nret
					m.traceInstrs += nret
				}
			} else {
				m.noteHot(pc)
			}
			continue
		}
		pc = next
		budget--
		continue

	slowpath:
		// Publish architectural state, retire exactly one instruction on
		// the reference path, and resume the fast loop.
		consumed = budget0 - budget
		m.PC = pc
		m.Instret += consumed
		m.Now += consumed
		if err := m.StepInto(&ev); err != nil {
			return err
		}
		m.Now++ // RunFunctional charges one cycle per instruction
		pc = m.PC
		// The slow step may have landed exactly on a checkpoint boundary.
		if err := m.maybeCheckpoint(); err != nil {
			return err
		}
		budget0 = 0
		if limit > m.Instret {
			budget0 = limit - m.Instret
		}
		budget = budget0
		if m.Halted {
			return nil
		}
		// Slow steps (MMIO, syscalls) can dominate some guests' time, so
		// the kill switch is also polled here — with no Stop channel this
		// is one nil check per slow step.
		if m.Stop != nil {
			if m.Interrupted() {
				return ErrStopped
			}
			if budget0 > stopPollChunk {
				budget0 = stopPollChunk
				budget = budget0
			}
		}
		if d := m.ckptDist(); budget0 > d {
			budget0 = d
			budget = budget0
		}
		// The slow step may have decoded code at a new address (extending
		// the store-invalidation guard) or switched curSeg; re-hoist the
		// loop's cached bounds so fetch and the store guard stay coherent.
		predLo, predSpan = m.predLo, m.predHi-m.predLo
		if s := m.curSeg; s != nil {
			segBase, segUops = s.base, s.uops
		}
	}
}
