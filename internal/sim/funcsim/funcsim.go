// Package funcsim implements the functional simulation platform — the role
// QEMU and Spike play in FireMarshal's workflow (§II-A.3): fast,
// ISA-faithful execution with no timing model, used for software
// development, guest-init execution during builds, and reference-output
// generation. Time advances one cycle per instruction, which keeps rdcycle
// monotonic for guest code without claiming timing fidelity.
//
// The platform supports the "spike" variant: the same engine with
// golden-model devices attached (§IV-A used a modified Spike carrying the
// PFA golden model).
package funcsim

import (
	"fmt"
	"io"
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/isa"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim"
)

// Config controls the functional platform.
type Config struct {
	// Variant names the simulator ("qemu" or "spike"); informational.
	Variant string
	// MaxInstrs bounds each Exec to catch runaway guests (default 500M).
	MaxInstrs uint64
	// ExtraArgs carries the workload's qemu-args/spike-args; recorded for
	// reproducibility and surfaced in run logs.
	ExtraArgs []string
	// Trace receives a per-instruction execution trace (spike -l role).
	Trace io.Writer
	// Reference forces the reference StepInto loop even when the fast
	// loop is eligible — the knob differential tests and debugging use.
	Reference bool
	// Stop is the cooperative kill switch threaded into each machine (see
	// sim.Machine.Stop): the parallel launcher passes a job context's
	// Done channel so timeouts and Ctrl-C abort the simulation.
	Stop <-chan struct{}
	// Ckpt, when set, records completed Execs and snapshots the machine at
	// deterministic instruction boundaries so an interrupted run resumes
	// bit-identically (see internal/checkpoint). Incompatible with memory
	// hooks and tracing, whose state snapshots do not capture.
	Ckpt *checkpoint.Runtime
	// Obs is the registry sim_funcsim_* metrics report into; nil resolves
	// to the process-wide obs.Default.
	Obs *obs.Registry
}

// Platform is a functional simulation node.
type Platform struct {
	cfg       Config
	cycles    uint64
	devices   []sim.Device
	hooks     []sim.MemHook
	fallbacks []sim.SyscallFallback
}

var _ sim.Platform = (*Platform)(nil)

// New creates a functional platform.
func New(cfg Config) *Platform {
	if cfg.Variant == "" {
		cfg.Variant = "qemu"
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 500_000_000
	}
	p := &Platform{cfg: cfg}
	p.devices = []sim.Device{&sim.UART{}}
	return p
}

// Name implements sim.Platform.
func (p *Platform) Name() string { return p.cfg.Variant }

// CycleExact implements sim.Platform: functional simulation has no timing
// model.
func (p *Platform) CycleExact() bool { return false }

// Cycles implements sim.Platform.
func (p *Platform) Cycles() uint64 { return p.cycles }

// Charge implements sim.Platform. Functional time is instruction-counted;
// modeled OS overhead still advances the clock so logs stay ordered.
func (p *Platform) Charge(n uint64) { p.cycles += n }

// AddDevice implements sim.Platform.
func (p *Platform) AddDevice(d sim.Device) { p.devices = append(p.devices, d) }

// AddHook implements sim.Platform.
func (p *Platform) AddHook(h sim.MemHook) { p.hooks = append(p.hooks, h) }

// AddSyscall implements sim.Platform.
func (p *Platform) AddSyscall(fb sim.SyscallFallback) { p.fallbacks = append(p.fallbacks, fb) }

// Exec implements sim.Platform: run the executable to completion,
// functionally. With checkpointing enabled, execs a crashed attempt
// already completed replay from their records, and the crashed attempt's
// in-flight exec restores from its latest snapshot.
func (p *Platform) Exec(exe *isa.Executable, console io.Writer, args ...string) (*sim.ExecResult, error) {
	ck := p.cfg.Ckpt
	var sig string
	if ck != nil {
		if len(p.hooks) > 0 || p.cfg.Trace != nil {
			return nil, fmt.Errorf("funcsim(%s): checkpointing is incompatible with memory hooks and tracing", p.cfg.Variant)
		}
		sig = checkpoint.ExecSig(exe.Entry, args)
		if rec, out, ok, err := ck.ReplayNext(sig); err != nil {
			return nil, fmt.Errorf("funcsim(%s): %w", p.cfg.Variant, err)
		} else if ok {
			if console != nil {
				if _, err := console.Write(out); err != nil {
					return nil, err
				}
			}
			p.cycles += rec.Cycles
			return &sim.ExecResult{Exit: rec.Exit, Instrs: rec.Instrs, Cycles: rec.Cycles}, nil
		}
	}

	m := sim.NewMachine()
	m.Console = console
	m.Devices = p.devices
	m.Hooks = p.hooks
	fbs := make([]func(*sim.Machine, uint64) (bool, error), len(p.fallbacks))
	for i, fb := range p.fallbacks {
		fbs[i] = fb
	}
	m.SyscallFn = sim.BareSyscalls(fbs...)
	m.MaxInstrs = p.cfg.MaxInstrs
	m.Trace = p.cfg.Trace
	m.Stop = p.cfg.Stop
	m.Now = p.cycles
	m.LoadExecutable(exe, sim.DefaultStackTop)
	sim.SetupArgv(m, args)

	// Baselines predate BeginExec: a restore advances Instret and Now to
	// the snapshot boundary, and the deltas below must span the whole exec.
	start := p.cycles
	startInstrs := m.Instret
	if ck != nil {
		w, _, err := ck.BeginExec(sig, m, console)
		if err != nil {
			return nil, fmt.Errorf("funcsim(%s): %w", p.cfg.Variant, err)
		}
		m.Console = w
	}
	// Metric shards attach after any restore, so a resumed exec reports
	// only instructions it actually simulates; the run loops flush them at
	// fast-loop chunk boundaries.
	m.AttachObs(p.cfg.Obs.Counter("sim_funcsim_instrs_total").Shard(),
		p.cfg.Obs.Counter("sim_funcsim_cycles_total").Shard())
	m.AttachTraceObs(p.cfg.Obs)
	wallStart := time.Now()

	var err error
	if p.cfg.Reference {
		_, err = sim.RunReference(m)
	} else {
		_, err = sim.RunFunctional(m)
	}
	p.cycles = m.Now
	if err != nil {
		return nil, fmt.Errorf("funcsim(%s): %w", p.cfg.Variant, err)
	}
	instrs := m.Instret - startInstrs
	cycles := p.cycles - start
	// A 0-duration exec produces +Inf here; Gauge.Set clamps it to 0.
	p.cfg.Obs.Gauge("sim_funcsim_mips").Set(float64(instrs) / time.Since(wallStart).Seconds() / 1e6)
	if ck != nil {
		if err := ck.FinishExec(m.ExitCode, instrs, cycles); err != nil {
			return nil, fmt.Errorf("funcsim(%s): %w", p.cfg.Variant, err)
		}
	}
	return &sim.ExecResult{Exit: m.ExitCode, Instrs: instrs, Cycles: cycles}, nil
}
