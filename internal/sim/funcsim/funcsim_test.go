package funcsim

import (
	"bytes"
	"io"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
)

func build(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Name() != "qemu" {
		t.Errorf("default variant = %q", p.Name())
	}
	if p.CycleExact() {
		t.Error("functional sim must not claim cycle exactness")
	}
	p2 := New(Config{Variant: "spike"})
	if p2.Name() != "spike" {
		t.Errorf("variant = %q", p2.Name())
	}
}

func TestExecCountsInstrsAsCycles(t *testing.T) {
	p := New(Config{})
	res, err := p.Exec(build(t, `
_start:
    nop
    nop
    nop
    li a0, 0
    li a7, 93
    ecall
`), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != res.Cycles {
		t.Errorf("functional time must be instruction-counted: %d vs %d", res.Instrs, res.Cycles)
	}
	if p.Cycles() != res.Cycles {
		t.Errorf("platform clock %d != exec cycles %d", p.Cycles(), res.Cycles)
	}
}

func TestClockAccumulatesAcrossExecs(t *testing.T) {
	p := New(Config{})
	exe := build(t, "_start:\n    li a0, 0\n    li a7, 93\n    ecall\n")
	p.Exec(exe, io.Discard)
	first := p.Cycles()
	p.Charge(100)
	p.Exec(exe, io.Discard)
	if p.Cycles() != 2*first+100 {
		t.Errorf("clock = %d, want %d", p.Cycles(), 2*first+100)
	}
}

func TestArgvPassing(t *testing.T) {
	p := New(Config{})
	var out bytes.Buffer
	_, err := p.Exec(build(t, `
_start:
    # print argc
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`), &out, "prog", "arg1", "arg2")
	if err != nil {
		t.Fatal(err)
	}
	// a0 = argc = 3 at entry; the program prints it before clobbering.
	if out.String() != "3" {
		t.Errorf("argc = %q", out.String())
	}
}

func TestInstrLimitEnforced(t *testing.T) {
	p := New(Config{MaxInstrs: 100})
	_, err := p.Exec(build(t, "_start:\n    j _start\n"), io.Discard)
	if err == nil {
		t.Error("expected instruction-limit trap")
	}
}

type testSyscall struct{ called bool }

func TestSyscallFallbacks(t *testing.T) {
	p := New(Config{})
	ts := &testSyscall{}
	p.AddSyscall(func(m *sim.Machine, num uint64) (bool, error) {
		if num == 0x999 {
			ts.called = true
			m.Regs[sim.RegA0] = 0x42
			return true, nil
		}
		return false, nil
	})
	var out bytes.Buffer
	_, err := p.Exec(build(t, `
_start:
    li a7, 0x999
    ecall
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.called || out.String() != "66" {
		t.Errorf("fallback: called=%v out=%q", ts.called, out.String())
	}
}

func TestUnknownSyscallStillTraps(t *testing.T) {
	p := New(Config{})
	if _, err := p.Exec(build(t, "_start:\n    li a7, 0x777\n    ecall\n"), io.Discard); err == nil {
		t.Error("unhandled syscall should trap")
	}
}
