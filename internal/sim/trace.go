// Trace compilation: the speed tier above the predecoded fast loop.
//
// runFast pays a fetch (bounds check + slice index), a dispatch (one
// switch), and a budget decrement per instruction. For loop-dominated
// guests nearly every retired instruction sits on a small set of hot
// paths, so that per-instruction overhead is almost entirely redundant:
// the same instructions dispatch in the same order millions of times.
// The trace compiler removes it by stitching the dominant path from a
// hot loop head into a superblock — a single-entry sequence of trace ops
// executed straight-line, with a guard at every side exit — and letting
// runFast dispatch the whole trace as one unit.
//
// Formation. runFast counts executions of backward-branch targets (the
// classic loop-head heuristic) in a small direct-mapped table; at
// hotThreshold the head is compiled. Compilation walks the predecoded
// uops from the head, assuming every conditional branch goes its static
// likely direction (backward = taken, forward = not taken) and recording
// that assumption as the guard's expected outcome, following JALs, and
// stopping at the first indirect branch, environment instruction
// (ECALL/EBREAK/CSR), undecodable word, segment exit, or traceMaxOps.
// If the walk returns to the head the trace is a closed loop and one
// dispatch runs many iterations. Adjacent instruction pairs with
// combinable semantics are fused into single trace ops (macro-op
// fusion): lui+addi (link-time constant), addi+ld / addi+sd (address
// bump + access), slt[u]+beqz/bnez (compare-and-branch), add+add
// (compute + accumulate), addi+addi (independent induction bumps). A
// fused op retires both guest instructions but pays one dispatch.
//
// Safety invariants (the differential suite enforces all of these):
//   - Guards: a mispredicted branch exits the trace having retired
//     exactly the instructions up to and including the branch, with the
//     architecturally correct next pc. Re-entry goes through runFast.
//   - MMIO: loads/stores re-check the device range and exit *before*
//     executing the access (nothing from the op, fused or not, has
//     retired), so runFast re-executes it and routes to the slow path.
//   - Self-modifying code: traces record the [lo,hi) span of every word
//     they were compiled from; invalidateCode drops overlapping traces,
//     and an in-trace store that hits the code guard exits the trace
//     right after the store retires — even when it just invalidated the
//     trace it is running in.
//   - Accounting: dispatch requires budget >= one full pass, and side
//     exits retire fewer, so a trace can never run past an instruction
//     limit, Stop-poll chunk, or checkpoint boundary (the budget is
//     already clamped to all three).
//   - Checkpoints: the tables are pure caches over predecoded code.
//     LoadExecutable and RebuildCode reset them, so a restored run
//     re-detects hotness from scratch and stays bit-identical.
package sim

import (
	"encoding/binary"

	"firemarshal/internal/isa"
)

const (
	// hotTabSize/traceTabSize are direct-mapped table sizes (powers of
	// two). Collisions only cost re-detection, never correctness.
	hotTabSize   = 512
	traceTabSize = 512
	// hotThreshold is how many times a backward-branch target executes
	// before it is compiled. Low enough that short benches still spend
	// almost all retirements in traces, high enough that one-shot
	// backward jumps (function epilogues) never pay compilation.
	hotThreshold = 16
	// traceMaxOps caps superblock length in trace ops (a fused pair is
	// one op), bounding compile time and mispredict cost.
	traceMaxOps = 64
)

// Synthetic trace-only opcodes, placed above the architectural isa.Op
// space so one switch dispatches both plain and fused/specialized ops.
const (
	topNop isa.Op = 0x80 + iota
	// topJalLink is JAL with rd != 0: write the precomputed link
	// address; flow to the jump target is implicit in op order.
	topJalLink
	// topAuipc writes a precomputed pc-relative constant.
	topAuipc
	// topLuiAddi is lui rd, hi + addi rd, rd, lo: one constant write.
	topLuiAddi
	// topAddiLd is addi rt, ra, i1 + ld rd, i2(rt): address bump + load.
	topAddiLd
	// topAddiSd is addi rt, ra, i1 + sd rs, i2(rt): address bump + store.
	topAddiSd
	// topCmpBranch is slt/sltu rd + beqz/bnez rd: compare, write rd,
	// and guard in one op. imm2 bit 0 = unsigned, bit 1 = branch-on-nonzero.
	topCmpBranch
	// topAddAdd is add rd, rs1, rs2 + add rd2, rd2, rd: compute and
	// fold into an accumulator in one op.
	topAddAdd
	// topAddiAddi is two independent addis: rd = rs1 + imm and
	// rd2 = rs2 + imm2, where the second does not read the first's rd.
	topAddiAddi
)

// The synthetic opcode space starts at 0x80; the architectural space
// must stay below it (negative array length here if it ever grows past).
var _ [0x80 - int(isa.OpREMUW) - 1]struct{}

// hotEntry is one direct-mapped execution counter for a loop-head pc.
type hotEntry struct {
	pc    uint64
	count uint32
}

// traceOp is one step of a compiled superblock. Register fields are
// pre-masked to 5 bits at build time, and ops that architecturally
// write x0 are compiled to topNop, so the hot dispatch skips both the
// mask and the regs[0] re-zero that runFast pays per instruction.
type traceOp struct {
	pc     uint64 // guest pc of (the first instruction of) this op
	target uint64 // branch target, JAL link, or precomputed constant
	imm    int32
	imm2   int32  // fused second immediate, or topCmpBranch flags
	cum    uint16 // guest instructions retired through this op in a pass
	op     isa.Op
	rd     uint8
	rs1    uint8
	rs2    uint8
	rd2    uint8 // destination of the fused second instruction
	n      uint8 // guest instructions this op retires (1, or 2 fused)
	expect bool  // guards: the branch outcome the trace assumes
}

// trace is one compiled superblock.
type trace struct {
	head   uint64 // entry pc (the hot backward-branch target)
	next   uint64 // pc after a full pass; == head for a closed loop
	lo, hi uint64 // [lo, hi) span of every guest word compiled in
	n      uint64 // guest instructions retired by one full pass; 0 = uncompilable sentinel
	fusion uint32 // bit (op - topNop) set per synthetic op kind compiled in
	ops    []traceOp
}

// FusionKindNames names the synthetic trace-op kinds, indexed by the bit
// position used in TraceFusionKinds (bit i ↔ synthetic op topNop+i).
var FusionKindNames = [...]string{
	"nop", "jal-link", "auipc", "lui+addi", "addi+ld",
	"addi+sd", "cmp+branch", "add+add", "addi+addi",
}

// TraceFusionKinds returns the accumulated bitmask of synthetic trace-op
// kinds that appeared in a dispatched superblock this machine lifetime;
// bit i corresponds to FusionKindNames[i]. The verification farm's
// coverage model reads it to steer workload generation toward fusion
// kinds the corpus has not yet exercised.
func (m *Machine) TraceFusionKinds() uint32 { return m.fusionSeen }

// TraceStats returns the machine-lifetime trace-cache counters: traces
// compiled, superblock dispatches, invalidations, and instructions
// retired inside traces.
func (m *Machine) TraceStats() (built, hits, invals, traceInstrs uint64) {
	return m.tracesBuilt, m.traceHits, m.traceInvals, m.traceInstrs
}

// lookupTrace returns the compiled trace entered at pc, if any.
func (m *Machine) lookupTrace(pc uint64) *trace {
	if m.traceTab == nil {
		return nil
	}
	if t := m.traceTab[(pc>>2)&(traceTabSize-1)]; t != nil && t.head == pc {
		return t
	}
	return nil
}

// noteHot bumps the execution count of a backward-branch target and
// compiles it into the trace table once it crosses hotThreshold. Heads
// that cannot be compiled install a sentinel (n == 0) so they stop
// paying the counter; a table collision simply evicts.
func (m *Machine) noteHot(pc uint64) {
	if m.hotTab == nil {
		m.hotTab = new([hotTabSize]hotEntry)
		m.traceTab = new([traceTabSize]*trace)
	}
	e := &m.hotTab[(pc>>2)&(hotTabSize-1)]
	if e.pc != pc {
		e.pc, e.count = pc, 1
		return
	}
	e.count++
	if e.count < hotThreshold {
		return
	}
	e.count = 0
	t := m.compileTrace(pc)
	if t.n != 0 {
		m.tracesBuilt++
	}
	m.traceTab[(pc>>2)&(traceTabSize-1)] = t
}

// invalidateTraces drops every trace compiled from a word in [first,
// last). invalidateCode calls it before touching the uop arrays, so a
// store into code can never leave a stale superblock installed.
func (m *Machine) invalidateTraces(first, last uint64) {
	if m.traceTab == nil {
		return
	}
	for i, t := range m.traceTab {
		if t != nil && first < t.hi && last > t.lo {
			m.traceTab[i] = nil
			m.traceInvals++
		}
	}
}

// resetTraces discards all trace-compiler state. Called wherever the
// predecoded caches are rebuilt (executable load, checkpoint restore):
// the tables are pure caches, so dropping them never changes semantics,
// and a restored run re-detects hotness exactly like a fresh one.
func (m *Machine) resetTraces() {
	m.hotTab = nil
	m.traceTab = nil
}

// segFor returns the predecoded segment containing pc, if any.
func (m *Machine) segFor(pc uint64) *segCode {
	for i := range m.segs {
		s := &m.segs[i]
		if pc-s.base < s.limit-s.base {
			return s
		}
	}
	return nil
}

// compileTrace builds a superblock starting at head by walking the
// predecoded uops along the statically likely path. It always returns a
// trace; an uncompilable head yields a sentinel with n == 0.
func (m *Machine) compileTrace(head uint64) *trace {
	t := &trace{head: head, next: head, lo: head, hi: head + 4}
	s := m.segFor(head)
	if s == nil || head&3 != 0 {
		return t
	}
	peek := func(pc uint64) (uop, bool) {
		if pc&3 != 0 || pc-s.base >= s.limit-s.base {
			return uop{}, false
		}
		u := s.uops[(pc-s.base)>>2]
		return u, u.Op != isa.OpInvalid
	}
	pc := head
build:
	for {
		if len(t.ops) > 0 && pc == head {
			break // closed loop: a full pass re-enters the trace
		}
		if len(t.ops) >= traceMaxOps {
			break
		}
		u, ok := peek(pc)
		if !ok {
			break // undecodable word or left the segment
		}
		op := traceOp{
			op: u.Op, pc: pc, imm: u.Imm, n: 1,
			rd: u.Rd & 31, rs1: u.Rs1 & 31, rs2: u.Rs2 & 31,
		}
		flow := pc + 4
		switch u.Op {
		case isa.OpJALR, isa.OpECALL, isa.OpEBREAK, isa.OpCSRRS, isa.OpCSRRW:
			// Indirect flow and environment instructions end the
			// superblock; runFast/slowpath handles them at t.next.
			break build
		case isa.OpFENCE:
			op.op = topNop
		case isa.OpJAL:
			dest := pc + uint64(u.Imm)
			if op.rd == 0 {
				op.op = topNop
			} else {
				op.op = topJalLink
				op.target = pc + 4
			}
			flow = dest
		case isa.OpAUIPC:
			if op.rd == 0 {
				op.op = topNop
			} else {
				op.op = topAuipc
				op.target = pc + uint64(u.Imm)
			}
		case isa.OpLUI:
			if op.rd == 0 {
				op.op = topNop
				break
			}
			// lui rd, hi + addi rd, rd, lo → one constant write.
			if u2, ok2 := peek(pc + 4); ok2 && u2.Op == isa.OpADDI &&
				u2.Rd&31 == op.rd && u2.Rs1&31 == op.rd {
				op.op = topLuiAddi
				op.target = uint64(u.Imm) + uint64(u2.Imm)
				op.n = 2
				flow = pc + 8
			}
		case isa.OpADDI:
			if op.rd == 0 {
				op.op = topNop // addi x0 (canonical nop)
				break
			}
			u2, ok2 := peek(pc + 4)
			switch {
			// addi rt, ra, i1 + ld rd, i2(rt) → fused address bump +
			// load. Both destinations written in architectural order,
			// so rd == rt stays correct.
			case ok2 && u2.Op == isa.OpLD && u2.Rs1&31 == op.rd:
				op.op = topAddiLd
				op.rd2 = u2.Rd & 31
				op.imm2 = u2.Imm
				op.n = 2
				flow = pc + 8
			// addi rt, ra, i1 + sd rs, i2(rt) → fused bump + store.
			// Skipped when rs == rt: the reference order reads the
			// store value after the bump writes it.
			case ok2 && u2.Op == isa.OpSD && u2.Rs1&31 == op.rd && u2.Rs2&31 != op.rd:
				op.op = topAddiSd
				op.rs2 = u2.Rs2 & 31
				op.imm2 = u2.Imm
				op.n = 2
				flow = pc + 8
			// addi + addi with independent sources → two induction
			// bumps in one op. The second must not read the first's rd;
			// rd == rd2 stays correct because rd2 is written last.
			case ok2 && u2.Op == isa.OpADDI && u2.Rd&31 != 0 && u2.Rs1&31 != op.rd:
				op.op = topAddiAddi
				op.rd2 = u2.Rd & 31
				op.rs2 = u2.Rs1 & 31
				op.imm2 = u2.Imm
				op.n = 2
				flow = pc + 8
			}
		case isa.OpADD:
			if op.rd == 0 {
				op.op = topNop
				break
			}
			// add rd, rs1, rs2 + add racc, racc, rd (either operand
			// order) → compute and accumulate. racc == rd stays correct:
			// the accumulate reads rd's fresh value, as in program order.
			if u2, ok2 := peek(pc + 4); ok2 && u2.Op == isa.OpADD && u2.Rd&31 != 0 &&
				((u2.Rs1&31 == u2.Rd&31 && u2.Rs2&31 == op.rd) ||
					(u2.Rs2&31 == u2.Rd&31 && u2.Rs1&31 == op.rd)) {
				op.op = topAddAdd
				op.rd2 = u2.Rd & 31
				op.n = 2
				flow = pc + 8
			}
		case isa.OpSLT, isa.OpSLTU:
			if op.rd == 0 {
				op.op = topNop
				break
			}
			// slt[u] rd + beqz/bnez rd → compare-and-branch. rd is
			// still written (architecturally visible) before the guard.
			if u2, ok2 := peek(pc + 4); ok2 && (u2.Op == isa.OpBEQ || u2.Op == isa.OpBNE) &&
				u2.Rs1&31 == op.rd && u2.Rs2&31 == 0 {
				bt := pc + 4 + uint64(u2.Imm)
				var flags int32
				if u.Op == isa.OpSLTU {
					flags |= 1
				}
				if u2.Op == isa.OpBNE {
					flags |= 2
				}
				op.op = topCmpBranch
				op.imm2 = flags
				op.target = bt
				op.expect = bt <= pc+4 // backward = likely taken
				op.n = 2
				if op.expect {
					flow = bt
				} else {
					flow = pc + 8
				}
			}
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
			op.target = pc + uint64(u.Imm)
			op.expect = op.target <= pc // backward = likely taken
			if op.expect {
				flow = op.target
			} else {
				flow = pc + 4
			}
		default:
			// Plain ALU ops writing x0 are architectural nops. Loads
			// and stores always stay live (MMIO side effects).
			if op.rd == 0 && !u.Op.IsLoad() && !u.Op.IsStore() {
				op.op = topNop
			}
		}
		if op.pc < t.lo {
			t.lo = op.pc
		}
		if end := op.pc + 4*uint64(op.n); end > t.hi {
			t.hi = end
		}
		t.ops = append(t.ops, op)
		pc = flow
	}
	t.next = pc
	var cum uint16
	for i := range t.ops {
		cum += uint16(t.ops[i].n)
		t.ops[i].cum = cum
		if op := t.ops[i].op; op >= topNop {
			t.fusion |= 1 << (op - topNop)
		}
	}
	t.n = uint64(cum)
	return t
}

// runTrace executes the trace starting at t.head, repeating full passes
// while the trace closes on itself and the budget allows another one.
// It returns the next pc and the number of guest instructions retired.
// The caller guarantees budget >= t.n, so at least one pass (or a side
// exit short of one) always fits; retired never exceeds budget.
func (m *Machine) runTrace(t *trace, regs *[32]uint64, mem *Memory, devLo, devSpan, predLo, predSpan, budget uint64) (uint64, uint64) {
	var retired uint64
	// Hoisted: the m.invalidateCode call below would otherwise force a
	// reload of every trace field on each pass (the compiler must assume
	// the method clobbers them; execution never mutates a trace).
	ops := t.ops
	tn, tnext, thead := t.n, t.next, t.head
	for retired+tn <= budget {
		for i := range ops {
			op := &ops[i]
			switch op.op {
			case topNop:
			case topJalLink:
				regs[op.rd] = op.target
			case topAuipc:
				regs[op.rd] = op.target
			case topLuiAddi:
				regs[op.rd] = op.target
			case topAddAdd:
				v := regs[op.rs1] + regs[op.rs2]
				regs[op.rd] = v
				regs[op.rd2] += v
			case topAddiAddi:
				v := regs[op.rs1] + uint64(op.imm)
				v2 := regs[op.rs2] + uint64(op.imm2)
				regs[op.rd] = v
				regs[op.rd2] = v2
			case topCmpBranch:
				var c uint64
				if op.imm2&1 != 0 {
					if regs[op.rs1] < regs[op.rs2] {
						c = 1
					}
				} else {
					if int64(regs[op.rs1]) < int64(regs[op.rs2]) {
						c = 1
					}
				}
				regs[op.rd] = c
				if ((c != 0) == (op.imm2&2 != 0)) != op.expect {
					retired += uint64(op.cum)
					if op.expect {
						return op.pc + 8, retired // predicted taken, fell through
					}
					return op.target, retired
				}
			case topAddiLd:
				a := regs[op.rs1] + uint64(op.imm)
				addr := a + uint64(op.imm2)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v uint64
				if off := addr & (pageSize - 1); off <= pageSize-8 {
					if p := mem.lookup(addr); p != nil {
						v = binary.LittleEndian.Uint64(p[off:])
					}
				} else {
					v = mem.Read(addr, 8)
				}
				regs[op.rd] = a
				regs[op.rd2] = v
				regs[0] = 0
			case topAddiSd:
				a := regs[op.rs1] + uint64(op.imm)
				addr := a + uint64(op.imm2)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				if off := addr & (pageSize - 1); off <= pageSize-8 {
					binary.LittleEndian.PutUint64(mem.lookupCreate(addr)[off:], regs[op.rs2])
				} else {
					mem.Write(addr, 8, regs[op.rs2])
				}
				regs[op.rd] = a
				if addr-predLo < predSpan {
					m.invalidateCode(addr, 8)
					return op.pc + 8, retired + uint64(op.cum)
				}

			case isa.OpADD:
				regs[op.rd] = regs[op.rs1] + regs[op.rs2]
			case isa.OpSUB:
				regs[op.rd] = regs[op.rs1] - regs[op.rs2]
			case isa.OpSLL:
				regs[op.rd] = regs[op.rs1] << (regs[op.rs2] & 63)
			case isa.OpSLT:
				var rd uint64
				if int64(regs[op.rs1]) < int64(regs[op.rs2]) {
					rd = 1
				}
				regs[op.rd] = rd
			case isa.OpSLTU:
				var rd uint64
				if regs[op.rs1] < regs[op.rs2] {
					rd = 1
				}
				regs[op.rd] = rd
			case isa.OpXOR:
				regs[op.rd] = regs[op.rs1] ^ regs[op.rs2]
			case isa.OpSRL:
				regs[op.rd] = regs[op.rs1] >> (regs[op.rs2] & 63)
			case isa.OpSRA:
				regs[op.rd] = uint64(int64(regs[op.rs1]) >> (regs[op.rs2] & 63))
			case isa.OpOR:
				regs[op.rd] = regs[op.rs1] | regs[op.rs2]
			case isa.OpAND:
				regs[op.rd] = regs[op.rs1] & regs[op.rs2]
			case isa.OpMUL:
				regs[op.rd] = regs[op.rs1] * regs[op.rs2]
			case isa.OpMULH:
				regs[op.rd] = mulh(int64(regs[op.rs1]), int64(regs[op.rs2]))
			case isa.OpMULHU:
				regs[op.rd] = mulhu(regs[op.rs1], regs[op.rs2])
			case isa.OpDIV:
				regs[op.rd] = div(int64(regs[op.rs1]), int64(regs[op.rs2]))
			case isa.OpDIVU:
				rs2 := regs[op.rs2]
				rd := ^uint64(0)
				if rs2 != 0 {
					rd = regs[op.rs1] / rs2
				}
				regs[op.rd] = rd
			case isa.OpREM:
				regs[op.rd] = rem(int64(regs[op.rs1]), int64(regs[op.rs2]))
			case isa.OpREMU:
				rs1, rs2 := regs[op.rs1], regs[op.rs2]
				rd := rs1
				if rs2 != 0 {
					rd = rs1 % rs2
				}
				regs[op.rd] = rd
			case isa.OpADDI:
				regs[op.rd] = regs[op.rs1] + uint64(op.imm)
			case isa.OpSLTI:
				var rd uint64
				if int64(regs[op.rs1]) < int64(op.imm) {
					rd = 1
				}
				regs[op.rd] = rd
			case isa.OpSLTIU:
				var rd uint64
				if regs[op.rs1] < uint64(op.imm) {
					rd = 1
				}
				regs[op.rd] = rd
			case isa.OpXORI:
				regs[op.rd] = regs[op.rs1] ^ uint64(op.imm)
			case isa.OpORI:
				regs[op.rd] = regs[op.rs1] | uint64(op.imm)
			case isa.OpANDI:
				regs[op.rd] = regs[op.rs1] & uint64(op.imm)
			case isa.OpSLLI:
				regs[op.rd] = regs[op.rs1] << uint64(op.imm)
			case isa.OpSRLI:
				regs[op.rd] = regs[op.rs1] >> uint64(op.imm)
			case isa.OpSRAI:
				regs[op.rd] = uint64(int64(regs[op.rs1]) >> uint64(op.imm))
			case isa.OpLUI:
				regs[op.rd] = uint64(op.imm)

			case isa.OpBEQ:
				if (regs[op.rs1] == regs[op.rs2]) != op.expect {
					return m.traceExit(op, retired)
				}
			case isa.OpBNE:
				if (regs[op.rs1] != regs[op.rs2]) != op.expect {
					return m.traceExit(op, retired)
				}
			case isa.OpBLT:
				if (int64(regs[op.rs1]) < int64(regs[op.rs2])) != op.expect {
					return m.traceExit(op, retired)
				}
			case isa.OpBGE:
				if (int64(regs[op.rs1]) >= int64(regs[op.rs2])) != op.expect {
					return m.traceExit(op, retired)
				}
			case isa.OpBLTU:
				if (regs[op.rs1] < regs[op.rs2]) != op.expect {
					return m.traceExit(op, retired)
				}
			case isa.OpBGEU:
				if (regs[op.rs1] >= regs[op.rs2]) != op.expect {
					return m.traceExit(op, retired)
				}

			case isa.OpLD:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var rd uint64
				if off := addr & (pageSize - 1); off <= pageSize-8 {
					if p := mem.lookup(addr); p != nil {
						rd = binary.LittleEndian.Uint64(p[off:])
					}
				} else {
					rd = mem.Read(addr, 8)
				}
				regs[op.rd] = rd
				regs[0] = 0
			case isa.OpLW:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v uint32
				if off := addr & (pageSize - 1); off <= pageSize-4 {
					if p := mem.lookup(addr); p != nil {
						v = binary.LittleEndian.Uint32(p[off:])
					}
				} else {
					v = uint32(mem.Read(addr, 4))
				}
				regs[op.rd] = uint64(int64(int32(v)))
				regs[0] = 0
			case isa.OpLWU:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v uint32
				if off := addr & (pageSize - 1); off <= pageSize-4 {
					if p := mem.lookup(addr); p != nil {
						v = binary.LittleEndian.Uint32(p[off:])
					}
				} else {
					v = uint32(mem.Read(addr, 4))
				}
				regs[op.rd] = uint64(v)
				regs[0] = 0
			case isa.OpLH:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v uint16
				if off := addr & (pageSize - 1); off <= pageSize-2 {
					if p := mem.lookup(addr); p != nil {
						v = binary.LittleEndian.Uint16(p[off:])
					}
				} else {
					v = uint16(mem.Read(addr, 2))
				}
				regs[op.rd] = uint64(int64(int16(v)))
				regs[0] = 0
			case isa.OpLHU:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v uint16
				if off := addr & (pageSize - 1); off <= pageSize-2 {
					if p := mem.lookup(addr); p != nil {
						v = binary.LittleEndian.Uint16(p[off:])
					}
				} else {
					v = uint16(mem.Read(addr, 2))
				}
				regs[op.rd] = uint64(v)
				regs[0] = 0
			case isa.OpLB:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v byte
				if p := mem.lookup(addr); p != nil {
					v = p[addr&(pageSize-1)]
				}
				regs[op.rd] = uint64(int64(int8(v)))
				regs[0] = 0
			case isa.OpLBU:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				var v byte
				if p := mem.lookup(addr); p != nil {
					v = p[addr&(pageSize-1)]
				}
				regs[op.rd] = uint64(v)
				regs[0] = 0

			case isa.OpSD:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				if off := addr & (pageSize - 1); off <= pageSize-8 {
					binary.LittleEndian.PutUint64(mem.lookupCreate(addr)[off:], regs[op.rs2])
				} else {
					mem.Write(addr, 8, regs[op.rs2])
				}
				if addr-predLo < predSpan {
					m.invalidateCode(addr, 8)
					return op.pc + 4, retired + uint64(op.cum)
				}
			case isa.OpSW:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				if off := addr & (pageSize - 1); off <= pageSize-4 {
					binary.LittleEndian.PutUint32(mem.lookupCreate(addr)[off:], uint32(regs[op.rs2]))
				} else {
					mem.Write(addr, 4, regs[op.rs2])
				}
				if addr-predLo < predSpan {
					m.invalidateCode(addr, 4)
					return op.pc + 4, retired + uint64(op.cum)
				}
			case isa.OpSH:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				if off := addr & (pageSize - 1); off <= pageSize-2 {
					binary.LittleEndian.PutUint16(mem.lookupCreate(addr)[off:], uint16(regs[op.rs2]))
				} else {
					mem.Write(addr, 2, regs[op.rs2])
				}
				if addr-predLo < predSpan {
					m.invalidateCode(addr, 2)
					return op.pc + 4, retired + uint64(op.cum)
				}
			case isa.OpSB:
				addr := regs[op.rs1] + uint64(op.imm)
				if addr-devLo < devSpan {
					return op.pc, retired + uint64(op.cum) - uint64(op.n)
				}
				mem.lookupCreate(addr)[addr&(pageSize-1)] = byte(regs[op.rs2])
				if addr-predLo < predSpan {
					m.invalidateCode(addr, 1)
					return op.pc + 4, retired + uint64(op.cum)
				}

			case isa.OpADDW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) + uint32(regs[op.rs2]))
			case isa.OpSUBW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) - uint32(regs[op.rs2]))
			case isa.OpSLLW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) << (regs[op.rs2] & 31))
			case isa.OpSRLW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) >> (regs[op.rs2] & 31))
			case isa.OpSRAW:
				regs[op.rd] = uint64(int64(int32(regs[op.rs1]) >> (regs[op.rs2] & 31)))
			case isa.OpADDIW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) + uint32(op.imm))
			case isa.OpSLLIW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) << uint64(op.imm))
			case isa.OpSRLIW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) >> uint64(op.imm))
			case isa.OpSRAIW:
				regs[op.rd] = uint64(int64(int32(regs[op.rs1]) >> uint64(op.imm)))
			case isa.OpMULW:
				regs[op.rd] = sext32(uint32(regs[op.rs1]) * uint32(regs[op.rs2]))
			case isa.OpDIVW:
				regs[op.rd] = divw(int32(regs[op.rs1]), int32(regs[op.rs2]))
			case isa.OpDIVUW:
				rs2 := uint32(regs[op.rs2])
				rd := ^uint64(0)
				if rs2 != 0 {
					rd = sext32(uint32(regs[op.rs1]) / rs2)
				}
				regs[op.rd] = rd
			case isa.OpREMW:
				regs[op.rd] = remw(int32(regs[op.rs1]), int32(regs[op.rs2]))
			case isa.OpREMUW:
				rs1, rs2 := uint32(regs[op.rs1]), uint32(regs[op.rs2])
				rd := sext32(rs1)
				if rs2 != 0 {
					rd = sext32(rs1 % rs2)
				}
				regs[op.rd] = rd
			}
		}
		retired += tn
		if tnext != thead {
			return tnext, retired
		}
	}
	return thead, retired
}

// traceExit resolves a mispredicted plain-branch guard: the branch
// itself retires, and control resumes on the unexpected edge.
func (m *Machine) traceExit(op *traceOp, retired uint64) (uint64, uint64) {
	retired += uint64(op.cum)
	if op.expect {
		return op.pc + 4, retired // predicted taken, fell through
	}
	return op.target, retired
}
