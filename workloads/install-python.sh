pkg install python3
pkg install numpy
