#!/bin/sh
# Cross-compile the CoreMark-like benchmark for the guest (the role a
# Speckle-style host-init script plays). Uses the masm assembler from PATH,
# falling back to `go run` when building inside the firemarshal module.
set -e
mkdir -p coremark-root/bench
if command -v masm >/dev/null 2>&1; then
    masm -o coremark-root/bench/coremark coremark.s
else
    go run ../cmd/masm -o coremark-root/bench/coremark coremark.s
fi
