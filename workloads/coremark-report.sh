#!/bin/sh
# Summarize the CoreMark-like run into a one-line report.
set -e
out="$1"
echo "coremark summary: $(cat "$out/coremark.csv")" > "$out/summary.txt"
