#!/bin/sh
# Cross-compile the DNN inference benchmark (ONNX-runtime stand-in).
set -e
mkdir -p onnx-root/bench
if command -v masm >/dev/null 2>&1; then
    masm -o onnx-root/bench/onnx onnx.s
else
    go run ../cmd/masm -o onnx-root/bench/onnx onnx.s
fi
