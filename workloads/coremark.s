# CoreMark-like benchmark for the FireMarshal guest: the three CoreMark
# kernels — linked-list walking, matrix multiply, and a state machine —
# plus a CRC over the results, printed as "coremark,<cycles>,<crc>".
.equ ITERS, 200

_start:
    rdcycle s10
    li s11, 0              # crc accumulator
    li s9, 0               # iteration counter

main_loop:
    # ---- kernel 1: linked-list walk (16 nodes, built in .data) ----
    la t1, list_head
    li t2, 0
list_walk:
    ld t3, 8(t1)           # value
    add s11, s11, t3
    ld t1, 0(t1)           # next
    addi t2, t2, 1
    li t4, 16
    blt t2, t4, list_walk

    # ---- kernel 2: 4x4 integer matrix multiply ----
    la s0, mat_a
    la s1, mat_b
    li t0, 0               # i
mm_i:
    li t1, 0               # j
mm_j:
    li t2, 0               # k
    li t6, 0               # acc
mm_k:
    # a[i][k]
    slli t3, t0, 2
    add t3, t3, t2
    slli t3, t3, 3
    add t3, t3, s0
    ld t4, 0(t3)
    # b[k][j]
    slli t3, t2, 2
    add t3, t3, t1
    slli t3, t3, 3
    add t3, t3, s1
    ld t5, 0(t3)
    mul t4, t4, t5
    add t6, t6, t4
    addi t2, t2, 1
    li t3, 4
    blt t2, t3, mm_k
    add s11, s11, t6
    addi t1, t1, 1
    li t3, 4
    blt t1, t3, mm_j
    addi t0, t0, 1
    li t3, 4
    blt t0, t3, mm_i

    # ---- kernel 3: state machine over a byte string ----
    la t0, input_str
    li t1, 0               # state
sm_loop:
    lbu t2, 0(t0)
    beqz t2, sm_done
    # state = (state * 31 + ch) % 97
    li t3, 31
    mul t1, t1, t3
    add t1, t1, t2
    li t3, 97
    remu t1, t1, t3
    addi t0, t0, 1
    j sm_loop
sm_done:
    add s11, s11, t1

    # ---- crc16 step over the accumulator ----
    li t0, 8
crc_loop:
    andi t1, s11, 1
    srli s11, s11, 1
    beqz t1, crc_noxor
    li t2, 0xA001
    xor s11, s11, t2
crc_noxor:
    addi t0, t0, -1
    bnez t0, crc_loop

    addi s9, s9, 1
    li t0, ITERS
    blt s9, t0, main_loop

    # ---- report: coremark,<cycles>,<crc> ----
    rdcycle t0
    sub s10, t0, s10
    la a1, tag
    li a2, 9
    li a0, 1
    li a7, 64
    ecall
    mv a0, s10
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    mv a0, s11
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall

.data
tag: .ascii "coremark,"
    .align 3
# 16-node linked list in shuffled order; node = {next, value}
list_head:
n0:  .dword n7,  3
n1:  .dword n12, 14
n2:  .dword n9,  1
n3:  .dword n15, 9
n4:  .dword n2,  5
n5:  .dword n8,  11
n6:  .dword n1,  2
n7:  .dword n4,  8
n8:  .dword n3,  13
n9:  .dword n14, 7
n10: .dword n6,  12
n11: .dword n10, 4
n12: .dword n5,  10
n13: .dword n11, 15
n14: .dword n13, 6
n15: .dword n0,  16
mat_a:
    .dword 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
mat_b:
    .dword 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1
input_str:
    .asciz "firemarshal coremark state machine input"
